#include "query/kernel_counters.h"

#include <array>
#include <atomic>
#include <string>

#include "obs/metrics.h"

namespace corra::query {

namespace {

// Lazily resolved per-scheme counter slots: only schemes a workload
// actually touches appear in registry exports. The slot write races
// benignly — Registry::counter is idempotent, so every racer resolves
// the same Counter and the winning store is irrelevant.
struct SchemeCounterTable {
  const char* base;
  std::array<std::atomic<obs::Counter*>, 64> slots{};

  void Add(enc::Scheme scheme, uint64_t rows) {
    if (!obs::Enabled() || rows == 0) {
      return;
    }
    const auto id = static_cast<size_t>(scheme);
    if (id >= slots.size()) {
      return;
    }
    obs::Counter* counter = slots[id].load(std::memory_order_acquire);
    if (counter == nullptr) {
      std::string name(base);
      name += "{scheme=\"";
      name += enc::SchemeToString(scheme);
      name += "\"}";
      counter = &obs::Registry::Default().counter(name);
      slots[id].store(counter, std::memory_order_release);
    }
    counter->Add(rows);
  }
};

SchemeCounterTable g_decode_rows{"query.decode_rows", {}};
SchemeCounterTable g_gather_rows{"query.gather_rows", {}};
SchemeCounterTable g_filter_rows{"query.filter_rows", {}};

}  // namespace

void CountDecodeRows(enc::Scheme scheme, uint64_t rows) {
  g_decode_rows.Add(scheme, rows);
}

void CountGatherRows(enc::Scheme scheme, uint64_t rows) {
  g_gather_rows.Add(scheme, rows);
}

void CountFilterRows(enc::Scheme scheme, uint64_t rows) {
  g_filter_rows.Add(scheme, rows);
}

}  // namespace corra::query
