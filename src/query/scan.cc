#include "query/scan.h"

#include <algorithm>

#include "core/horizontal.h"
#include "query/morsel.h"

namespace corra::query {

namespace {

// The target column as a single-reference horizontal column bound to
// `ref_col`, or null. scheme() pins down the class, so no RTTI.
const SingleRefColumn* AsSingleRefOn(const enc::EncodedColumn& target,
                                     size_t ref_col) {
  if (!enc::IsSingleReference(target.scheme())) {
    return nullptr;
  }
  const auto& horizontal = static_cast<const SingleRefColumn&>(target);
  return horizontal.ref_index() == ref_col ? &horizontal : nullptr;
}

// Strategy crossover, measured on the AVX2 dev box (1M rows, uniform
// selections, ns per selected row — gather = positioned GatherRange,
// dense = morsel DecodeRange + compact):
//
//            sel 0.05       sel 0.25      sel 0.50      sel 1.00
//   FOR    1.2 vs  8.4    1.1 vs 2.4    1.1 vs 1.9    1.2 vs 1.4
//   Dict   1.4 vs 12.9    1.0 vs 3.7    0.9 vs 2.3    0.9 vs 1.6
//   Diff   2.4 vs 17.8    1.6 vs 4.5    1.5 vs 2.7    1.5 vs 1.7
//   Delta 11.3 vs 11.8    3.3 vs 3.5    2.3 vs 2.6    1.5 vs 2.0
//
// The positioned sparse path wins at *every* selectivity for random
// selections, because the schemes that profit from dense windows below
// a density threshold (Delta's fused prefix windows, RLE's vectorized
// run expansion) already make that split internally at their own
// measured crossovers (average gap 24 for Delta, 8 for RLE). What the
// generic layer can still exploit is the exactly-contiguous selection
// (gap 1, e.g. a range predicate over sorted data): there DecodeRange
// writes straight into the output with no compact pass, ~2x cheaper
// than gathering position by position.
bool IsContiguous(std::span<const uint32_t> rows) {
  // Exact element-wise check, not a span == size shortcut: an
  // out-of-order selection can match the span test (e.g. {0,2,1,3})
  // and would be silently materialized in the wrong order. Random
  // selections exit at the first gap, so the scan is effectively O(1)
  // on the non-contiguous path and trivial next to the decode it gates.
  if (rows.empty()) {
    return false;
  }
  const uint32_t first = rows.front();
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] != first + i) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ScanColumn(const Block& block, size_t col,
                std::span<const uint32_t> rows, int64_t* out) {
  if (IsContiguous(rows)) {
    ScanColumnRange(block, col, rows.front(), rows.size(), out);
    return;
  }
  block.column(col).GatherRange(rows, out);
}

void ScanPair(const Block& block, size_t ref_col, size_t target_col,
              std::span<const uint32_t> rows, int64_t* out_ref,
              int64_t* out_target) {
  if (IsContiguous(rows)) {
    ScanPairRange(block, ref_col, target_col, rows.front(), rows.size(),
                  out_ref, out_target);
    return;
  }
  ScanColumn(block, ref_col, rows, out_ref);
  if (const SingleRefColumn* horizontal =
          AsSingleRefOn(block.column(target_col), ref_col)) {
    // Reuse the already materialized reference values: the paper's
    // "query on both columns" fast path.
    horizontal->GatherWithReference(rows, out_ref, out_target);
    return;
  }
  ScanColumn(block, target_col, rows, out_target);
}

void ScanColumnRange(const Block& block, size_t col, size_t row_begin,
                     size_t count, int64_t* out) {
  block.column(col).DecodeRange(row_begin, count, out);
}

void ScanPairRange(const Block& block, size_t ref_col, size_t target_col,
                   size_t row_begin, size_t count, int64_t* out_ref,
                   int64_t* out_target) {
  block.column(ref_col).DecodeRange(row_begin, count, out_ref);
  if (const SingleRefColumn* horizontal =
          AsSingleRefOn(block.column(target_col), ref_col)) {
    // Feed each decoded reference morsel straight into the ranged
    // kernel — the reference is never fetched a second time.
    ForEachMorsel(row_begin, count, [&](size_t begin, size_t len) {
      horizontal->DecodeRangeWithReference(
          begin, len, out_ref + (begin - row_begin),
          out_target + (begin - row_begin));
    });
    return;
  }
  block.column(target_col).DecodeRange(row_begin, count, out_target);
}

std::vector<int64_t> ScanColumn(const Block& block, size_t col,
                                std::span<const uint32_t> rows) {
  std::vector<int64_t> out(rows.size());
  ScanColumn(block, col, rows, out.data());
  return out;
}

}  // namespace corra::query
