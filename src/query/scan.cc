#include "query/scan.h"

#include "core/horizontal.h"

namespace corra::query {

void ScanColumn(const Block& block, size_t col,
                std::span<const uint32_t> rows, int64_t* out) {
  block.column(col).Gather(rows, out);
}

void ScanPair(const Block& block, size_t ref_col, size_t target_col,
              std::span<const uint32_t> rows, int64_t* out_ref,
              int64_t* out_target) {
  block.column(ref_col).Gather(rows, out_ref);
  if (const auto* horizontal =
          dynamic_cast<const SingleRefColumn*>(&block.column(target_col));
      horizontal != nullptr && horizontal->ref_index() == ref_col) {
    // Reuse the already materialized reference values: the paper's
    // "query on both columns" fast path.
    horizontal->GatherWithReference(rows, out_ref, out_target);
    return;
  }
  block.column(target_col).Gather(rows, out_target);
}

std::vector<int64_t> ScanColumn(const Block& block, size_t col,
                                std::span<const uint32_t> rows) {
  std::vector<int64_t> out(rows.size());
  ScanColumn(block, col, rows, out.data());
  return out;
}

}  // namespace corra::query
