#include "query/scan.h"

#include <algorithm>
#include <cassert>

#include "core/horizontal.h"
#include "query/kernel_counters.h"
#include "query/morsel.h"

namespace corra::query {

namespace {

// The target column as a single-reference horizontal column bound to
// `ref_col`, or null. scheme() pins down the class, so no RTTI.
const SingleRefColumn* AsSingleRefOn(const enc::EncodedColumn& target,
                                     size_t ref_col) {
  if (!enc::IsSingleReference(target.scheme())) {
    return nullptr;
  }
  const auto& horizontal = static_cast<const SingleRefColumn&>(target);
  return horizontal.ref_index() == ref_col ? &horizontal : nullptr;
}

// Strategy crossover, measured on the AVX2 dev box (1M rows, uniform
// selections, ns per selected row — gather = positioned GatherRange,
// dense = morsel DecodeRange + compact):
//
//            sel 0.05       sel 0.25      sel 0.50      sel 1.00
//   FOR    1.2 vs  8.4    1.1 vs 2.4    1.1 vs 1.9    1.2 vs 1.4
//   Dict   1.4 vs 12.9    1.0 vs 3.7    0.9 vs 2.3    0.9 vs 1.6
//   Diff   2.4 vs 17.8    1.6 vs 4.5    1.5 vs 2.7    1.5 vs 1.7
//   Delta 11.3 vs 11.8    3.3 vs 3.5    2.3 vs 2.6    1.5 vs 2.0
//
// The positioned sparse path wins at *every* selectivity for random
// selections, because the schemes that profit from dense windows below
// a density threshold (Delta's fused prefix windows, RLE's vectorized
// run expansion) already make that split internally at their own
// measured crossovers (average gap 24 for Delta, 8 for RLE). What the
// generic layer can still exploit is the exactly-contiguous selection
// (gap 1, e.g. a range predicate over sorted data): there DecodeRange
// writes straight into the output with no compact pass, ~2x cheaper
// than gathering position by position.
// One classification pass over the selection so every caller-facing
// entry point shares the same routing and the same contract checks.
// Random selections exit the contiguity run at the first gap, so the
// pass is effectively one sortedness sweep — trivial next to the decode
// it gates.
enum class SelectionShape {
  kEmpty,       // No positions.
  kSingle,      // Exactly one position.
  kContiguous,  // rows[i] == rows[0] + i for all i (a dense range).
  kSorted,      // Non-decreasing (duplicates allowed).
  kUnsorted,    // At least one position smaller than its predecessor.
};

SelectionShape ClassifySelection(std::span<const uint32_t> rows) {
  if (rows.empty()) {
    return SelectionShape::kEmpty;
  }
  if (rows.size() == 1) {
    return SelectionShape::kSingle;
  }
  // Exact element-wise contiguity, not a span == size shortcut: an
  // out-of-order selection can match the span test (e.g. {0,2,1,3})
  // and would be silently materialized in the wrong order.
  const uint32_t first = rows.front();
  bool contiguous = true;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] < rows[i - 1]) {
      return SelectionShape::kUnsorted;
    }
    contiguous = contiguous && rows[i] == first + i;
  }
  return contiguous ? SelectionShape::kContiguous : SelectionShape::kSorted;
}

}  // namespace

void ScanColumn(const Block& block, size_t col,
                std::span<const uint32_t> rows, int64_t* out) {
  switch (ClassifySelection(rows)) {
    case SelectionShape::kEmpty:
      return;
    case SelectionShape::kSingle:
      out[0] = block.column(col).Get(rows[0]);
      return;
    case SelectionShape::kContiguous:
      ScanColumnRange(block, col, rows.front(), rows.size(), out);
      return;
    case SelectionShape::kSorted:
      CountGatherRows(block.column(col).scheme(), rows.size());
      block.column(col).GatherRange(rows, out);
      return;
    case SelectionShape::kUnsorted:
      // Contract violation (see scan.h). Loud in debug; in release the
      // behavior stays defined — per-row point access is order-immune.
      assert(!"ScanColumn: selection positions must be non-decreasing");
      for (size_t i = 0; i < rows.size(); ++i) {
        out[i] = block.column(col).Get(rows[i]);
      }
      return;
  }
}

void ScanPair(const Block& block, size_t ref_col, size_t target_col,
              std::span<const uint32_t> rows, int64_t* out_ref,
              int64_t* out_target) {
  switch (ClassifySelection(rows)) {
    case SelectionShape::kEmpty:
      return;
    case SelectionShape::kSingle:
      // Horizontal targets fetch their reference internally on the
      // per-row path, so a pair lookup is just two Gets.
      out_ref[0] = block.column(ref_col).Get(rows[0]);
      out_target[0] = block.column(target_col).Get(rows[0]);
      return;
    case SelectionShape::kContiguous:
      ScanPairRange(block, ref_col, target_col, rows.front(), rows.size(),
                    out_ref, out_target);
      return;
    case SelectionShape::kSorted:
      break;
    case SelectionShape::kUnsorted:
      assert(!"ScanPair: selection positions must be non-decreasing");
      for (size_t i = 0; i < rows.size(); ++i) {
        out_ref[i] = block.column(ref_col).Get(rows[i]);
        out_target[i] = block.column(target_col).Get(rows[i]);
      }
      return;
  }
  CountGatherRows(block.column(ref_col).scheme(), rows.size());
  CountGatherRows(block.column(target_col).scheme(), rows.size());
  block.column(ref_col).GatherRange(rows, out_ref);
  if (const SingleRefColumn* horizontal =
          AsSingleRefOn(block.column(target_col), ref_col)) {
    // Reuse the already materialized reference values: the paper's
    // "query on both columns" fast path.
    horizontal->GatherWithReference(rows, out_ref, out_target);
    return;
  }
  block.column(target_col).GatherRange(rows, out_target);
}

void ScanColumnRange(const Block& block, size_t col, size_t row_begin,
                     size_t count, int64_t* out) {
  CountDecodeRows(block.column(col).scheme(), count);
  block.column(col).DecodeRange(row_begin, count, out);
}

void ScanPairRange(const Block& block, size_t ref_col, size_t target_col,
                   size_t row_begin, size_t count, int64_t* out_ref,
                   int64_t* out_target) {
  CountDecodeRows(block.column(ref_col).scheme(), count);
  CountDecodeRows(block.column(target_col).scheme(), count);
  block.column(ref_col).DecodeRange(row_begin, count, out_ref);
  if (const SingleRefColumn* horizontal =
          AsSingleRefOn(block.column(target_col), ref_col)) {
    // Feed each decoded reference morsel straight into the ranged
    // kernel — the reference is never fetched a second time.
    ForEachMorsel(row_begin, count, [&](size_t begin, size_t len) {
      horizontal->DecodeRangeWithReference(
          begin, len, out_ref + (begin - row_begin),
          out_target + (begin - row_begin));
    });
    return;
  }
  block.column(target_col).DecodeRange(row_begin, count, out_target);
}

std::vector<int64_t> ScanColumn(const Block& block, size_t col,
                                std::span<const uint32_t> rows) {
  std::vector<int64_t> out(rows.size());
  ScanColumn(block, col, rows, out.data());
  return out;
}

}  // namespace corra::query
