#include "query/scan.h"

#include "core/horizontal.h"
#include "query/morsel.h"

namespace corra::query {

namespace {

// The target column as a single-reference horizontal column bound to
// `ref_col`, or null. scheme() pins down the class, so no RTTI.
const SingleRefColumn* AsSingleRefOn(const enc::EncodedColumn& target,
                                     size_t ref_col) {
  if (!enc::IsSingleReference(target.scheme())) {
    return nullptr;
  }
  const auto& horizontal = static_cast<const SingleRefColumn&>(target);
  return horizontal.ref_index() == ref_col ? &horizontal : nullptr;
}

}  // namespace

void ScanColumn(const Block& block, size_t col,
                std::span<const uint32_t> rows, int64_t* out) {
  block.column(col).Gather(rows, out);
}

void ScanPair(const Block& block, size_t ref_col, size_t target_col,
              std::span<const uint32_t> rows, int64_t* out_ref,
              int64_t* out_target) {
  block.column(ref_col).Gather(rows, out_ref);
  if (const SingleRefColumn* horizontal =
          AsSingleRefOn(block.column(target_col), ref_col)) {
    // Reuse the already materialized reference values: the paper's
    // "query on both columns" fast path.
    horizontal->GatherWithReference(rows, out_ref, out_target);
    return;
  }
  block.column(target_col).Gather(rows, out_target);
}

void ScanColumnRange(const Block& block, size_t col, size_t row_begin,
                     size_t count, int64_t* out) {
  block.column(col).DecodeRange(row_begin, count, out);
}

void ScanPairRange(const Block& block, size_t ref_col, size_t target_col,
                   size_t row_begin, size_t count, int64_t* out_ref,
                   int64_t* out_target) {
  block.column(ref_col).DecodeRange(row_begin, count, out_ref);
  if (const SingleRefColumn* horizontal =
          AsSingleRefOn(block.column(target_col), ref_col)) {
    // Feed each decoded reference morsel straight into the ranged
    // kernel — the reference is never fetched a second time.
    ForEachMorsel(row_begin, count, [&](size_t begin, size_t len) {
      horizontal->DecodeRangeWithReference(
          begin, len, out_ref + (begin - row_begin),
          out_target + (begin - row_begin));
    });
    return;
  }
  block.column(target_col).DecodeRange(row_begin, count, out_target);
}

std::vector<int64_t> ScanColumn(const Block& block, size_t col,
                                std::span<const uint32_t> rows) {
  std::vector<int64_t> out(rows.size());
  ScanColumn(block, col, rows, out.data());
  return out;
}

}  // namespace corra::query
