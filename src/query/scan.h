// Materializing scans over encoded blocks — the query kernel of the
// paper's latency experiments (Fig. 5-8).
//
// Two access patterns matter:
//  * ScanColumn: materialize one column at the selected positions. For a
//    horizontal column this transparently fetches the reference too —
//    the overhead the paper measures as "query on diff-encoded column".
//  * ScanPair: materialize the reference *and* the target. The scan
//    gathers the reference once and feeds it to GatherWithReference, so
//    the reference access is shared — the paper's "query on both columns"
//    case, where Corra's overhead (mostly) vanishes.

#ifndef CORRA_QUERY_SCAN_H_
#define CORRA_QUERY_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "storage/block.h"

namespace corra::query {

/// Materializes column `col` of `block` at the positions `rows` into
/// `out` (rows.size() values). Routes through the selection-driven
/// sparse path (EncodedColumn::GatherRange — positioned packed-stream
/// gathers, no densification), except for exactly-contiguous selections
/// which decode straight into the output; see the measured strategy
/// table in scan.cc. Results are identical either way.
///
/// Selection contract: `rows` must be non-decreasing (duplicates are
/// fine — each occurrence materializes the same value) and every
/// position must be < block.rows(). A strictly-unsorted selection
/// asserts in debug builds; in release builds the behavior is defined —
/// out[i] == the value at rows[i] for every i, via a per-row fallback —
/// but forfeits the batched fast paths. Empty and single-position
/// selections return early without entering any GatherRange kernel.
void ScanColumn(const Block& block, size_t col,
                std::span<const uint32_t> rows, int64_t* out);

/// Materializes a (reference, target) pair at the positions `rows`
/// (same selection contract as ScanColumn). When `target_col` is a
/// single-reference horizontal column whose reference is `ref_col`, the
/// reference values gathered into `out_ref` are reused to decode the
/// target (no second reference fetch).
void ScanPair(const Block& block, size_t ref_col, size_t target_col,
              std::span<const uint32_t> rows, int64_t* out_ref,
              int64_t* out_target);

/// Dense-range scan: materializes [row_begin, row_begin + count) of
/// column `col` through the ranged kernel (one DecodeRange dispatch per
/// morsel, never a per-row virtual Get). Fully-selected blocks go
/// through this instead of building an iota position vector.
void ScanColumnRange(const Block& block, size_t col, size_t row_begin,
                     size_t count, int64_t* out);

/// Dense-range pair scan: like ScanPair but for a dense row range. When
/// `target_col` is a single-reference column on `ref_col`, each
/// reference morsel is decoded once and fed to DecodeRangeWithReference.
void ScanPairRange(const Block& block, size_t ref_col, size_t target_col,
                   size_t row_begin, size_t count, int64_t* out_ref,
                   int64_t* out_target);

/// Convenience wrappers returning vectors.
std::vector<int64_t> ScanColumn(const Block& block, size_t col,
                                std::span<const uint32_t> rows);

}  // namespace corra::query

#endif  // CORRA_QUERY_SCAN_H_
