// Timing utilities for the latency experiments (Fig. 5-8): a monotonic
// stopwatch and repeated-measurement helpers reporting the mean over the
// paper's 10 selection vectors per selectivity.

#ifndef CORRA_QUERY_LATENCY_H_
#define CORRA_QUERY_LATENCY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "storage/block.h"

namespace corra::query {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// The selectivities of the paper's Fig. 5/8 sweep:
/// {0.001, 0.002, ..., 0.009, 0.01, 0.02, ..., 0.09, 0.1, 0.2, ..., 0.9, 1.0}.
std::vector<double> PaperSelectivitySweep();

/// Zoom-in selectivities of Fig. 6/7.
inline std::vector<double> ZoomSelectivities() {
  return {0.005, 0.01, 0.05, 0.1};
}

/// Runs `body(rows)` once per selection vector and returns the mean
/// wall-clock seconds per run. A `sink` value accumulated from the
/// materialized output defeats dead-code elimination.
double MeanRunSeconds(
    std::span<const std::vector<uint32_t>> selection_vectors,
    const std::function<void(std::span<const uint32_t>)>& body);

/// One row of a latency-vs-selectivity experiment.
struct LatencyPoint {
  double selectivity = 0;
  double baseline_seconds = 0;  // single-column compression
  double corra_seconds = 0;
  double uncompressed_seconds = 0;

  double RatioOverBaseline() const {
    return baseline_seconds > 0 ? corra_seconds / baseline_seconds : 0;
  }
};

}  // namespace corra::query

#endif  // CORRA_QUERY_LATENCY_H_
