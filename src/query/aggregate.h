// Aggregate pushdown over encoded columns: SUM / MIN / MAX evaluated on
// the compressed representation where the scheme allows shortcuts.
//
//   * Dict: min/max fold over the bit-packed codes; sum uses a per-code
//     histogram when the dictionary is small.
//   * everything else: ranged decode-and-fold over morsels (one
//     DecodeRange dispatch per 2048 rows; see query/morsel.h).
//
// Sums are computed in unsigned 64-bit arithmetic (wrap-around), which is
// exact modulo 2^64 and matches what a fold over the decoded values
// produces.

#ifndef CORRA_QUERY_AGGREGATE_H_
#define CORRA_QUERY_AGGREGATE_H_

#include <cstdint>
#include <optional>

#include "encoding/encoded_column.h"

namespace corra::query {

/// Sum of all values (wrap-around int64). 0 for an empty column.
int64_t SumColumn(const enc::EncodedColumn& column);

/// Minimum / maximum value; nullopt for an empty column.
std::optional<int64_t> MinColumn(const enc::EncodedColumn& column);
std::optional<int64_t> MaxColumn(const enc::EncodedColumn& column);

/// Both extrema in one decode pass (the block-stats writer's kernel).
struct MinMax {
  int64_t min;
  int64_t max;
};
std::optional<MinMax> MinMaxColumn(const enc::EncodedColumn& column);

}  // namespace corra::query

#endif  // CORRA_QUERY_AGGREGATE_H_
