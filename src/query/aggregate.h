// Aggregate pushdown over encoded columns: SUM / MIN / MAX evaluated on
// the compressed representation where the scheme allows shortcuts.
//
//   * FOR / BitPack: sum = n * base + sum(packed offsets); min/max scan
//     the narrow packed domain without rebasing.
//   * Dict: min/max are the first/last *used* dictionary entries; sum
//     uses a per-code histogram when the dictionary is small.
//   * everything else: chunked decode-and-fold.
//
// Sums are computed in unsigned 64-bit arithmetic (wrap-around), which is
// exact modulo 2^64 and matches what a fold over the decoded values
// produces.

#ifndef CORRA_QUERY_AGGREGATE_H_
#define CORRA_QUERY_AGGREGATE_H_

#include <cstdint>
#include <optional>

#include "encoding/encoded_column.h"

namespace corra::query {

/// Sum of all values (wrap-around int64). 0 for an empty column.
int64_t SumColumn(const enc::EncodedColumn& column);

/// Minimum / maximum value; nullopt for an empty column.
std::optional<int64_t> MinColumn(const enc::EncodedColumn& column);
std::optional<int64_t> MaxColumn(const enc::EncodedColumn& column);

}  // namespace corra::query

#endif  // CORRA_QUERY_AGGREGATE_H_
