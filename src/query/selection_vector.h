// Uniform random selection vectors — the paper's query workload:
// "When measuring query latency, we generate 10 uniform random selection
//  vectors for each individual selectivity (as done, e.g., in Lang et
//  al.). In the experiment, we decompress and materialize the values at
//  the specified positions." (Sec. 3)
//
// A selection vector is a sorted list of unique row positions.

#ifndef CORRA_QUERY_SELECTION_VECTOR_H_
#define CORRA_QUERY_SELECTION_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace corra::query {

/// Draws round(selectivity * num_rows) distinct row positions uniformly at
/// random from [0, num_rows), returned sorted ascending. `selectivity` is
/// clamped to [0, 1].
std::vector<uint32_t> GenerateSelectionVector(size_t num_rows,
                                              double selectivity, Rng* rng);

/// The `count` selection vectors per selectivity used by the latency
/// experiments (the paper uses count = 10).
std::vector<std::vector<uint32_t>> GenerateSelectionVectors(
    size_t num_rows, double selectivity, size_t count, Rng* rng);

}  // namespace corra::query

#endif  // CORRA_QUERY_SELECTION_VECTOR_H_
