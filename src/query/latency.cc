#include "query/latency.h"

namespace corra::query {

std::vector<double> PaperSelectivitySweep() {
  std::vector<double> sweep;
  for (int i = 1; i <= 9; ++i) {
    sweep.push_back(0.001 * i);
  }
  for (int i = 1; i <= 9; ++i) {
    sweep.push_back(0.01 * i);
  }
  for (int i = 1; i <= 10; ++i) {
    sweep.push_back(0.1 * i);
  }
  return sweep;
}

double MeanRunSeconds(
    std::span<const std::vector<uint32_t>> selection_vectors,
    const std::function<void(std::span<const uint32_t>)>& body) {
  if (selection_vectors.empty()) {
    return 0;
  }
  Stopwatch watch;
  for (const auto& rows : selection_vectors) {
    body(rows);
  }
  return watch.ElapsedSeconds() /
         static_cast<double>(selection_vectors.size());
}

}  // namespace corra::query
