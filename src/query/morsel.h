// The shared morsel driver of the batch decode pipeline.
//
// Query kernels walk a column in fixed-size morsels (enc::kMorselRows =
// 2048 rows): each morsel is decoded with ONE virtual DecodeRange call —
// which every scheme overrides with a sequential fast path — into a
// stack-resident buffer that the kernel then consumes in a tight loop.
// This replaces the old architecture where generic paths materialized
// position vectors and bottomed out in one virtual Get() per row.
//
//   driver (ForEachMorsel / ForEachDecodedMorsel)
//     -> ranged kernel (DecodeRange / DecodeRangeWithReference)
//       -> consumer loop (compare, fold, emit, copy)
//
// Consumers: query/filter.cc, query/aggregate.cc, query/scan.cc, and the
// serve layer's per-block scans.

#ifndef CORRA_QUERY_MORSEL_H_
#define CORRA_QUERY_MORSEL_H_

#include <cstddef>
#include <cstdint>

#include "encoding/encoded_column.h"

namespace corra::query {

/// Rows per morsel (re-exported from the encoding layer so query code
/// has a single spelling).
inline constexpr size_t kMorselRows = enc::kMorselRows;

/// Calls `body(morsel_begin, morsel_len)` over [row_begin, row_begin +
/// row_count) in kMorselRows-sized steps.
template <typename Body>
void ForEachMorsel(size_t row_begin, size_t row_count, Body&& body) {
  while (row_count > 0) {
    const size_t len = row_count < kMorselRows ? row_count : kMorselRows;
    body(row_begin, len);
    row_begin += len;
    row_count -= len;
  }
}

/// Decodes [row_begin, row_begin + row_count) of `column` morsel by
/// morsel and calls `body(morsel_begin, values, morsel_len)` with the
/// decoded values in a stack buffer. One virtual dispatch per morsel.
template <typename Body>
void ForEachDecodedMorsel(const enc::EncodedColumn& column, size_t row_begin,
                          size_t row_count, Body&& body) {
  int64_t values[kMorselRows];
  ForEachMorsel(row_begin, row_count, [&](size_t begin, size_t len) {
    column.DecodeRange(begin, len, values);
    body(begin, static_cast<const int64_t*>(values), len);
  });
}

}  // namespace corra::query

#endif  // CORRA_QUERY_MORSEL_H_
