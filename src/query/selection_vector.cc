#include "query/selection_vector.h"

#include <algorithm>
#include <cmath>

namespace corra::query {

std::vector<uint32_t> GenerateSelectionVector(size_t num_rows,
                                              double selectivity, Rng* rng) {
  selectivity = std::clamp(selectivity, 0.0, 1.0);
  const size_t k = static_cast<size_t>(
      std::llround(selectivity * static_cast<double>(num_rows)));
  if (k == 0) {
    return {};
  }
  if (k == num_rows) {
    std::vector<uint32_t> all(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      all[i] = static_cast<uint32_t>(i);
    }
    return all;
  }
  // Bitmap-based sampling without replacement: O(num_rows) bits, then one
  // sweep to emit positions in sorted order. Rejection stays cheap because
  // we sample the complement when k > n/2.
  const bool invert = k > num_rows / 2;
  const size_t draws = invert ? num_rows - k : k;
  std::vector<bool> picked(num_rows, false);
  size_t remaining = draws;
  while (remaining > 0) {
    const size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(num_rows) - 1));
    if (!picked[pos]) {
      picked[pos] = true;
      --remaining;
    }
  }
  std::vector<uint32_t> rows;
  rows.reserve(k);
  for (size_t i = 0; i < num_rows; ++i) {
    if (picked[i] != invert) {
      rows.push_back(static_cast<uint32_t>(i));
    }
  }
  return rows;
}

std::vector<std::vector<uint32_t>> GenerateSelectionVectors(
    size_t num_rows, double selectivity, size_t count, Rng* rng) {
  std::vector<std::vector<uint32_t>> vectors;
  vectors.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    vectors.push_back(GenerateSelectionVector(num_rows, selectivity, rng));
  }
  return vectors;
}

}  // namespace corra::query
