#include "query/aggregate.h"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "common/simd/simd.h"
#include "core/ref_dispatch.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "query/morsel.h"

namespace corra::query {

namespace {

// All folds run one SIMD aggregate kernel per morsel (4-lane
// accumulators, one horizontal reduce per call) instead of a scalar
// per-row fold; see common/simd/simd.h.

// Ranged decode-and-sum fallback for any scheme.
uint64_t SumGeneric(const enc::EncodedColumn& column) {
  uint64_t sum = 0;
  ForEachDecodedMorsel(
      column, 0, column.size(),
      [&](size_t, const int64_t* values, size_t len) {
        sum += simd::SumU64(reinterpret_cast<const uint64_t*>(values), len);
      });
  return sum;
}

// Ranged decode-and-minmax fallback for any scheme.
void MinMaxGeneric(const enc::EncodedColumn& column, int64_t* min,
                   int64_t* max) {
  int64_t lo = column.Get(0);
  int64_t hi = lo;
  ForEachDecodedMorsel(
      column, 0, column.size(),
      [&](size_t, const int64_t* values, size_t len) {
        int64_t morsel_min;
        int64_t morsel_max;
        simd::MinMaxI64(values, len, &morsel_min, &morsel_max);
        lo = std::min(lo, morsel_min);
        hi = std::max(hi, morsel_max);
      });
  *min = lo;
  *max = hi;
}

// Histogram of dictionary code usage (small dictionaries only), built
// from ranged code unpacks.
std::vector<uint64_t> CodeHistogram(const enc::DictColumn& column) {
  std::vector<uint64_t> counts(column.dictionary().size(), 0);
  uint64_t codes[kMorselRows];
  ForEachMorsel(0, column.size(), [&](size_t begin, size_t len) {
    column.DecodeCodes(begin, len, codes);
    for (size_t i = 0; i < len; ++i) {
      ++counts[codes[i]];
    }
  });
  return counts;
}

// Extreme *used* dictionary codes in one pass over the packed codes.
void MinMaxCodes(const enc::DictColumn& column, uint64_t* min_code,
                 uint64_t* max_code) {
  uint64_t lo = ~uint64_t{0};
  uint64_t hi = 0;
  uint64_t codes[kMorselRows];
  ForEachMorsel(0, column.size(), [&](size_t begin, size_t len) {
    column.DecodeCodes(begin, len, codes);
    uint64_t morsel_min;
    uint64_t morsel_max;
    simd::MinMaxU64(codes, len, &morsel_min, &morsel_max);
    lo = std::min(lo, morsel_min);
    hi = std::max(hi, morsel_max);
  });
  *min_code = lo;
  *max_code = hi;
}

constexpr size_t kSmallDict = 1 << 16;

}  // namespace

int64_t SumColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return 0;
  }
  uint64_t sum = 0;
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      if (col.dictionary().size() <= kSmallDict) {
        // Small dictionary: per-code histogram, one multiply per entry.
        const auto counts = CodeHistogram(col);
        for (size_t code = 0; code < counts.size(); ++code) {
          sum += counts[code] *
                 static_cast<uint64_t>(col.dictionary()[code]);
        }
        return;
      }
      sum = SumGeneric(col);
    } else if constexpr (std::is_same_v<Column, enc::ForColumn>) {
      // sum = n * base + sum of packed offsets: fold the un-rebased
      // morsel, skip the per-row rebase entirely.
      uint64_t offsets[kMorselRows];
      ForEachMorsel(0, n, [&](size_t begin, size_t len) {
        col.DecodeOffsets(begin, len, offsets);
        sum += simd::SumU64(offsets, len);
      });
      sum += static_cast<uint64_t>(col.base()) * n;
    } else {
      // BitPack/Plain and every other scheme: ranged decode + fold.
      sum = SumGeneric(col);
    }
  });
  return static_cast<int64_t>(sum);
}

std::optional<int64_t> MinColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return std::nullopt;
  }
  int64_t result = 0;
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      // The dictionary is sorted; the smallest *used* code gives the
      // min. Every dictionary entry produced by Encode is used, so code
      // 0 works; after deserialization that invariant is unchecked, so
      // scan codes.
      uint64_t min_code;
      uint64_t max_code;
      MinMaxCodes(col, &min_code, &max_code);
      result = col.dictionary()[min_code];
    } else {
      int64_t max_unused;
      MinMaxGeneric(col, &result, &max_unused);
    }
  });
  return result;
}

std::optional<int64_t> MaxColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return std::nullopt;
  }
  int64_t result = 0;
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      uint64_t min_code;
      uint64_t max_code;
      MinMaxCodes(col, &min_code, &max_code);
      result = col.dictionary()[max_code];
    } else {
      int64_t min_unused;
      MinMaxGeneric(col, &min_unused, &result);
    }
  });
  return result;
}

std::optional<MinMax> MinMaxColumn(const enc::EncodedColumn& column) {
  if (column.size() == 0) {
    return std::nullopt;
  }
  MinMax result{};
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      // One fused pass over the packed codes finds both extreme used
      // codes.
      uint64_t min_code;
      uint64_t max_code;
      MinMaxCodes(col, &min_code, &max_code);
      result = MinMax{col.dictionary()[min_code],
                      col.dictionary()[max_code]};
    } else {
      result = MinMax{};
      MinMaxGeneric(col, &result.min, &result.max);
    }
  });
  return result;
}

}  // namespace corra::query
