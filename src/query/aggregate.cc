#include "query/aggregate.h"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "core/ref_dispatch.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "query/morsel.h"

namespace corra::query {

namespace {

// Ranged decode-and-fold fallback: one DecodeRange per morsel, no
// per-row virtual calls.
template <typename Fold>
void FoldGeneric(const enc::EncodedColumn& column, Fold&& fold) {
  ForEachDecodedMorsel(
      column, 0, column.size(),
      [&](size_t, const int64_t* values, size_t len) {
        for (size_t i = 0; i < len; ++i) {
          fold(values[i]);
        }
      });
}

// Histogram of dictionary code usage (small dictionaries only), built
// from ranged code unpacks.
std::vector<uint64_t> CodeHistogram(const enc::DictColumn& column) {
  std::vector<uint64_t> counts(column.dictionary().size(), 0);
  uint64_t codes[kMorselRows];
  ForEachMorsel(0, column.size(), [&](size_t begin, size_t len) {
    column.DecodeCodes(begin, len, codes);
    for (size_t i = 0; i < len; ++i) {
      ++counts[codes[i]];
    }
  });
  return counts;
}

// Minimum or maximum used dictionary code, from ranged code unpacks.
template <typename Pick>
uint64_t FoldCodes(const enc::DictColumn& column, uint64_t seed,
                   Pick&& pick) {
  uint64_t best = seed;
  uint64_t codes[kMorselRows];
  ForEachMorsel(0, column.size(), [&](size_t begin, size_t len) {
    column.DecodeCodes(begin, len, codes);
    for (size_t i = 0; i < len; ++i) {
      best = pick(best, codes[i]);
    }
  });
  return best;
}

constexpr size_t kSmallDict = 1 << 16;

}  // namespace

int64_t SumColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return 0;
  }
  uint64_t sum = 0;
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      if (col.dictionary().size() <= kSmallDict) {
        // Small dictionary: per-code histogram, one multiply per entry.
        const auto counts = CodeHistogram(col);
        for (size_t code = 0; code < counts.size(); ++code) {
          sum += counts[code] *
                 static_cast<uint64_t>(col.dictionary()[code]);
        }
        return;
      }
      FoldGeneric(col, [&sum](int64_t v) {
        sum += static_cast<uint64_t>(v);
      });
    } else if constexpr (std::is_same_v<Column, enc::ForColumn>) {
      // sum = n * base + sum of packed offsets: fold the un-rebased
      // morsel, skip the per-row rebase entirely.
      uint64_t offsets[kMorselRows];
      ForEachMorsel(0, n, [&](size_t begin, size_t len) {
        col.DecodeOffsets(begin, len, offsets);
        for (size_t i = 0; i < len; ++i) {
          sum += offsets[i];
        }
      });
      sum += static_cast<uint64_t>(col.base()) * n;
    } else {
      // BitPack/Plain and every other scheme: ranged decode + fold.
      FoldGeneric(col, [&sum](int64_t v) {
        sum += static_cast<uint64_t>(v);
      });
    }
  });
  return static_cast<int64_t>(sum);
}

std::optional<int64_t> MinColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return std::nullopt;
  }
  int64_t result = 0;
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      // The dictionary is sorted; the smallest *used* code gives the
      // min. Every dictionary entry produced by Encode is used, so code
      // 0 works; after deserialization that invariant is unchecked, so
      // scan codes.
      const uint64_t min_code = FoldCodes(
          col, ~uint64_t{0},
          [](uint64_t a, uint64_t b) { return a < b ? a : b; });
      result = col.dictionary()[min_code];
    } else {
      int64_t min_value = col.Get(0);
      FoldGeneric(col, [&min_value](int64_t v) {
        min_value = std::min(min_value, v);
      });
      result = min_value;
    }
  });
  return result;
}

std::optional<int64_t> MaxColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return std::nullopt;
  }
  int64_t result = 0;
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      const uint64_t max_code = FoldCodes(
          col, 0, [](uint64_t a, uint64_t b) { return a > b ? a : b; });
      result = col.dictionary()[max_code];
    } else {
      int64_t max_value = col.Get(0);
      FoldGeneric(col, [&max_value](int64_t v) {
        max_value = std::max(max_value, v);
      });
      result = max_value;
    }
  });
  return result;
}

std::optional<MinMax> MinMaxColumn(const enc::EncodedColumn& column) {
  if (column.size() == 0) {
    return std::nullopt;
  }
  MinMax result{};
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      // One pass over the packed codes finds both extreme used codes.
      uint64_t min_code = ~uint64_t{0};
      uint64_t max_code = 0;
      uint64_t codes[kMorselRows];
      ForEachMorsel(0, col.size(), [&](size_t begin, size_t len) {
        col.DecodeCodes(begin, len, codes);
        for (size_t i = 0; i < len; ++i) {
          min_code = std::min(min_code, codes[i]);
          max_code = std::max(max_code, codes[i]);
        }
      });
      result = MinMax{col.dictionary()[min_code],
                      col.dictionary()[max_code]};
    } else {
      int64_t min_value = col.Get(0);
      int64_t max_value = min_value;
      FoldGeneric(col, [&](int64_t v) {
        min_value = std::min(min_value, v);
        max_value = std::max(max_value, v);
      });
      result = MinMax{min_value, max_value};
    }
  });
  return result;
}

}  // namespace corra::query
