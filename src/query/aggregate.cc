#include "query/aggregate.h"

#include <algorithm>
#include <vector>

#include "encoding/bitpack.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"

namespace corra::query {

namespace {

// Chunked decode-and-fold fallback.
template <typename Fold>
void FoldGeneric(const enc::EncodedColumn& column, Fold&& fold) {
  constexpr size_t kChunk = 4096;
  const size_t n = column.size();
  std::vector<uint32_t> positions(kChunk);
  std::vector<int64_t> values(kChunk);
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t len = std::min(kChunk, n - begin);
    for (size_t i = 0; i < len; ++i) {
      positions[i] = static_cast<uint32_t>(begin + i);
    }
    column.Gather(std::span<const uint32_t>(positions.data(), len),
                  values.data());
    for (size_t i = 0; i < len; ++i) {
      fold(values[i]);
    }
  }
}

// Histogram of dictionary code usage (small dictionaries only).
std::vector<uint64_t> CodeHistogram(const enc::DictColumn& column) {
  std::vector<uint64_t> counts(column.dictionary().size(), 0);
  const size_t n = column.size();
  for (size_t i = 0; i < n; ++i) {
    ++counts[column.GetCode(i)];
  }
  return counts;
}

constexpr size_t kSmallDict = 1 << 16;

}  // namespace

int64_t SumColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return 0;
  }
  if (const auto* fr = dynamic_cast<const enc::ForColumn*>(&column)) {
    // sum = n * base + sum of packed offsets.
    uint64_t offsets = 0;
    for (size_t i = 0; i < n; ++i) {
      offsets += static_cast<uint64_t>(fr->Get(i)) -
                 static_cast<uint64_t>(fr->base());
    }
    return static_cast<int64_t>(
        static_cast<uint64_t>(fr->base()) * n + offsets);
  }
  if (const auto* dict = dynamic_cast<const enc::DictColumn*>(&column);
      dict != nullptr && dict->dictionary().size() <= kSmallDict) {
    const auto counts = CodeHistogram(*dict);
    uint64_t sum = 0;
    for (size_t code = 0; code < counts.size(); ++code) {
      sum += counts[code] * static_cast<uint64_t>(dict->dictionary()[code]);
    }
    return static_cast<int64_t>(sum);
  }
  uint64_t sum = 0;
  FoldGeneric(column, [&sum](int64_t v) {
    sum += static_cast<uint64_t>(v);
  });
  return static_cast<int64_t>(sum);
}

std::optional<int64_t> MinColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return std::nullopt;
  }
  if (const auto* dict = dynamic_cast<const enc::DictColumn*>(&column)) {
    // The dictionary is sorted; the smallest *used* code gives the min.
    // Every dictionary entry produced by Encode is used, so code 0 works;
    // after deserialization that invariant is unchecked, so scan codes.
    uint64_t min_code = ~uint64_t{0};
    for (size_t i = 0; i < n; ++i) {
      min_code = std::min(min_code, dict->GetCode(i));
    }
    return dict->dictionary()[min_code];
  }
  int64_t min_value = column.Get(0);
  FoldGeneric(column, [&min_value](int64_t v) {
    min_value = std::min(min_value, v);
  });
  return min_value;
}

std::optional<int64_t> MaxColumn(const enc::EncodedColumn& column) {
  const size_t n = column.size();
  if (n == 0) {
    return std::nullopt;
  }
  if (const auto* dict = dynamic_cast<const enc::DictColumn*>(&column)) {
    uint64_t max_code = 0;
    for (size_t i = 0; i < n; ++i) {
      max_code = std::max(max_code, dict->GetCode(i));
    }
    return dict->dictionary()[max_code];
  }
  int64_t max_value = column.Get(0);
  FoldGeneric(column, [&max_value](int64_t v) {
    max_value = std::max(max_value, v);
  });
  return max_value;
}

}  // namespace corra::query
