// Range-predicate evaluation over encoded columns (filter pushdown).
//
// Evaluates `lo <= value <= hi` directly on the compressed
// representation, as a morsel pipeline (see query/morsel.h):
//   * Dict: the sorted dictionary turns the value range into a code
//     range via two binary searches — the scan compares bit-packed
//     codes and never touches values;
//   * everything else (including horizontal schemes): ranged
//     decode-and-compare, one DecodeRange dispatch per morsel.
//
// Results are selection vectors compatible with query/scan.h.

#ifndef CORRA_QUERY_FILTER_H_
#define CORRA_QUERY_FILTER_H_

#include <cstdint>
#include <vector>

#include "encoding/encoded_column.h"

namespace corra::query {

/// Rows of `column` whose value lies in [lo, hi], ascending.
std::vector<uint32_t> FilterToSelection(const enc::EncodedColumn& column,
                                        int64_t lo, int64_t hi);

/// Number of rows of `column` whose value lies in [lo, hi].
size_t CountInRange(const enc::EncodedColumn& column, int64_t lo,
                    int64_t hi);

}  // namespace corra::query

#endif  // CORRA_QUERY_FILTER_H_
