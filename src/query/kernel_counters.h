// Per-scheme row counters for the query kernels — the storage-layer
// feed of the telemetry registry (src/obs/).
//
// Every materializing kernel call reports how many rows it served and
// under which encoding scheme, so the registry can answer "which
// scheme's decode path is this workload actually paying for" (the
// paper's core claim is that scheme choice dominates scan cost — these
// counters make that attributable at runtime, not just in benchmarks):
//
//   query.decode_rows{scheme="FOR"}   dense ranged decodes
//   query.gather_rows{scheme="Delta"} positioned sparse gathers
//   query.filter_rows{scheme="Dict"}  rows pushed through a predicate
//
// Counting happens once per kernel *call* (a block or morsel worth of
// rows), never per row; with observability off each call is a single
// predicted branch.

#ifndef CORRA_QUERY_KERNEL_COUNTERS_H_
#define CORRA_QUERY_KERNEL_COUNTERS_H_

#include <cstdint>

#include "encoding/scheme.h"

namespace corra::query {

/// Rows materialized by a dense ranged decode (DecodeRange paths).
void CountDecodeRows(enc::Scheme scheme, uint64_t rows);

/// Rows materialized by a positioned sparse gather (GatherRange paths).
void CountGatherRows(enc::Scheme scheme, uint64_t rows);

/// Rows evaluated by a range-predicate scan over an encoded column.
void CountFilterRows(enc::Scheme scheme, uint64_t rows);

}  // namespace corra::query

#endif  // CORRA_QUERY_KERNEL_COUNTERS_H_
