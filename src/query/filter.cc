#include "query/filter.h"

#include <algorithm>
#include <type_traits>

#include "core/ref_dispatch.h"
#include "encoding/dictionary.h"
#include "query/morsel.h"

namespace corra::query {

namespace {

// The filter kernels stage matching positions per morsel with a
// branchless select (rows[n] = pos; n += matched), then hand the staged
// block to `sink(rows, count)` — matching rows cost a store instead of a
// mispredicted branch, and the sink appends in bulk.

// Generic ranged decode-and-compare: one DecodeRange per morsel (works
// for every scheme, including horizontal ones whose references are
// bound), no per-row virtual calls.
template <typename Sink>
void FilterGeneric(const enc::EncodedColumn& column, int64_t lo, int64_t hi,
                   Sink&& sink) {
  uint32_t staged[kMorselRows];
  ForEachDecodedMorsel(
      column, 0, column.size(),
      [&](size_t begin, const int64_t* values, size_t len) {
        size_t n = 0;
        for (size_t i = 0; i < len; ++i) {
          staged[n] = static_cast<uint32_t>(begin + i);
          n += static_cast<size_t>(values[i] >= lo && values[i] <= hi);
        }
        sink(staged, n);
      });
}

// Dict fast path: translate the value range into a code range once, then
// compare bit-packed codes morsel by morsel — the scan never touches
// values.
template <typename Sink>
void FilterDict(const enc::DictColumn& column, int64_t lo, int64_t hi,
                Sink&& sink) {
  const auto dict = column.dictionary();
  const auto begin_it = std::lower_bound(dict.begin(), dict.end(), lo);
  const auto end_it = std::upper_bound(dict.begin(), dict.end(), hi);
  if (begin_it >= end_it) {
    return;
  }
  const uint64_t code_lo = static_cast<uint64_t>(begin_it - dict.begin());
  const uint64_t code_hi = static_cast<uint64_t>(end_it - dict.begin()) - 1;
  uint64_t codes[kMorselRows];
  uint32_t staged[kMorselRows];
  ForEachMorsel(0, column.size(), [&](size_t begin, size_t len) {
    column.DecodeCodes(begin, len, codes);
    size_t n = 0;
    for (size_t i = 0; i < len; ++i) {
      staged[n] = static_cast<uint32_t>(begin + i);
      n += static_cast<size_t>(codes[i] >= code_lo && codes[i] <= code_hi);
    }
    sink(staged, n);
  });
}

template <typename Sink>
void FilterDispatch(const enc::EncodedColumn& column, int64_t lo, int64_t hi,
                    Sink&& sink) {
  if (lo > hi) {
    return;
  }
  // One scheme dispatch per scan; the Dict code-domain path is the only
  // scheme-specific kernel left (FOR/BitPack compare decoded values —
  // their DecodeRange is a two-instruction-per-row loop already).
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      FilterDict(col, lo, hi, sink);
    } else {
      FilterGeneric(col, lo, hi, sink);
    }
  });
}

}  // namespace

std::vector<uint32_t> FilterToSelection(const enc::EncodedColumn& column,
                                        int64_t lo, int64_t hi) {
  std::vector<uint32_t> rows;
  FilterDispatch(column, lo, hi,
                 [&rows](const uint32_t* staged, size_t count) {
                   rows.insert(rows.end(), staged, staged + count);
                 });
  return rows;
}

size_t CountInRange(const enc::EncodedColumn& column, int64_t lo,
                    int64_t hi) {
  size_t count = 0;
  FilterDispatch(column, lo, hi,
                 [&count](const uint32_t*, size_t n) { count += n; });
  return count;
}

}  // namespace corra::query
