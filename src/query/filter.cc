#include "query/filter.h"

#include <algorithm>
#include <type_traits>

#include "common/simd/simd.h"
#include "core/ref_dispatch.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "query/kernel_counters.h"
#include "query/morsel.h"

namespace corra::query {

namespace {

// The filter kernels stage matching positions per morsel through the
// SIMD predicate kernels (compare -> movemask -> permutation-table
// left-pack; branchless select on the scalar fallback), then hand the
// staged block to `sink(rows, count)` so the sink appends in bulk.

// Generic ranged decode-and-compare: one DecodeRange per morsel (works
// for every scheme, including horizontal ones whose references are
// bound), one predicate kernel call per morsel.
template <typename Sink>
void FilterGeneric(const enc::EncodedColumn& column, int64_t lo, int64_t hi,
                   Sink&& sink) {
  uint32_t staged[kMorselRows];
  ForEachDecodedMorsel(
      column, 0, column.size(),
      [&](size_t begin, const int64_t* values, size_t len) {
        sink(staged, simd::FilterInRange(values, len, lo, hi,
                                         static_cast<uint32_t>(begin),
                                         staged));
      });
}

// Code-space fast path shared by FOR and Dict: the predicate is rebased
// into the packed domain once, then each morsel is a raw unpack plus an
// unsigned compare kernel — values are never reconstructed, and
// non-matching morsels cost nothing beyond the unpack.
template <typename DecodeCodes, typename Sink>
void FilterCodes(size_t rows, uint64_t code_lo, uint64_t code_hi,
                 DecodeCodes&& decode_codes, Sink&& sink) {
  uint64_t codes[kMorselRows];
  uint32_t staged[kMorselRows];
  ForEachMorsel(0, rows, [&](size_t begin, size_t len) {
    decode_codes(begin, len, codes);
    sink(staged, simd::FilterInRangeU64(codes, len, code_lo, code_hi,
                                        static_cast<uint32_t>(begin),
                                        staged));
  });
}

// Dict: translate the value range into a code range via two binary
// searches over the sorted dictionary.
template <typename Sink>
void FilterDict(const enc::DictColumn& column, int64_t lo, int64_t hi,
                Sink&& sink) {
  const auto dict = column.dictionary();
  const auto begin_it = std::lower_bound(dict.begin(), dict.end(), lo);
  const auto end_it = std::upper_bound(dict.begin(), dict.end(), hi);
  if (begin_it >= end_it) {
    return;
  }
  FilterCodes(
      column.size(), static_cast<uint64_t>(begin_it - dict.begin()),
      static_cast<uint64_t>(end_it - dict.begin()) - 1,
      [&](size_t begin, size_t len, uint64_t* out) {
        column.DecodeCodes(begin, len, out);
      },
      sink);
}

// FOR: rebase [lo, hi] by the frame base and clamp to the packed
// offset domain [0, 2^width - 1]; morsels then compare raw offsets.
template <typename Sink>
void FilterFor(const enc::ForColumn& column, int64_t lo, int64_t hi,
               Sink&& sink) {
  const int64_t base = column.base();
  if (hi < base) {
    return;  // The whole column is >= base.
  }
  // Wrap-around subtraction mirrors Encode's offset computation exactly,
  // so the rebase is correct for any int64 bounds.
  const uint64_t code_lo =
      lo <= base ? 0
                 : static_cast<uint64_t>(lo) - static_cast<uint64_t>(base);
  const uint64_t code_hi =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(base);
  const int width = column.bit_width();
  const uint64_t max_code =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  if (code_lo > max_code) {
    return;  // Predicate entirely above the representable offsets.
  }
  FilterCodes(
      column.size(), code_lo, std::min(code_hi, max_code),
      [&](size_t begin, size_t len, uint64_t* out) {
        column.DecodeOffsets(begin, len, out);
      },
      sink);
}

template <typename Sink>
void FilterDispatch(const enc::EncodedColumn& column, int64_t lo, int64_t hi,
                    Sink&& sink) {
  if (lo > hi) {
    return;
  }
  // One scheme dispatch per scan; FOR and Dict run in the packed code
  // domain, everything else decodes values and compares.
  DispatchRef(column, [&](const auto& col) {
    using Column = std::decay_t<decltype(col)>;
    if constexpr (std::is_same_v<Column, enc::DictColumn>) {
      FilterDict(col, lo, hi, sink);
    } else if constexpr (std::is_same_v<Column, enc::ForColumn>) {
      FilterFor(col, lo, hi, sink);
    } else {
      FilterGeneric(col, lo, hi, sink);
    }
  });
}

}  // namespace

std::vector<uint32_t> FilterToSelection(const enc::EncodedColumn& column,
                                        int64_t lo, int64_t hi) {
  CountFilterRows(column.scheme(), column.size());
  std::vector<uint32_t> rows;
  FilterDispatch(column, lo, hi,
                 [&rows](const uint32_t* staged, size_t count) {
                   rows.insert(rows.end(), staged, staged + count);
                 });
  return rows;
}

size_t CountInRange(const enc::EncodedColumn& column, int64_t lo,
                    int64_t hi) {
  CountFilterRows(column.scheme(), column.size());
  size_t count = 0;
  FilterDispatch(column, lo, hi,
                 [&count](const uint32_t*, size_t n) { count += n; });
  return count;
}

}  // namespace corra::query
