#include "query/filter.h"

#include <algorithm>

#include "encoding/bitpack.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"

namespace corra::query {

namespace {

// Generic decode-and-compare in chunks (works for every scheme,
// including horizontal ones whose references are bound).
template <typename Emit>
void FilterGeneric(const enc::EncodedColumn& column, int64_t lo, int64_t hi,
                   Emit&& emit) {
  constexpr size_t kChunk = 4096;
  const size_t n = column.size();
  std::vector<uint32_t> positions(kChunk);
  std::vector<int64_t> values(kChunk);
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t len = std::min(kChunk, n - begin);
    for (size_t i = 0; i < len; ++i) {
      positions[i] = static_cast<uint32_t>(begin + i);
    }
    column.Gather(std::span<const uint32_t>(positions.data(), len),
                  values.data());
    for (size_t i = 0; i < len; ++i) {
      if (values[i] >= lo && values[i] <= hi) {
        emit(static_cast<uint32_t>(begin + i));
      }
    }
  }
}

// FOR fast path: compare in the packed unsigned domain.
template <typename Emit>
void FilterFor(const enc::ForColumn& column, int64_t lo, int64_t hi,
               Emit&& emit) {
  const int64_t base = column.base();
  if (hi < base) {
    return;  // Entire column is >= base.
  }
  const uint64_t packed_lo =
      lo <= base ? 0
                 : static_cast<uint64_t>(lo) - static_cast<uint64_t>(base);
  const uint64_t packed_hi =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(base);
  const size_t n = column.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t packed =
        static_cast<uint64_t>(column.Get(i)) -
        static_cast<uint64_t>(base);
    if (packed >= packed_lo && packed <= packed_hi) {
      emit(static_cast<uint32_t>(i));
    }
  }
}

// Dict fast path: translate the value range into a code range once.
template <typename Emit>
void FilterDict(const enc::DictColumn& column, int64_t lo, int64_t hi,
                Emit&& emit) {
  const auto dict = column.dictionary();
  const auto begin_it = std::lower_bound(dict.begin(), dict.end(), lo);
  const auto end_it = std::upper_bound(dict.begin(), dict.end(), hi);
  if (begin_it >= end_it) {
    return;
  }
  const uint64_t code_lo = static_cast<uint64_t>(begin_it - dict.begin());
  const uint64_t code_hi = static_cast<uint64_t>(end_it - dict.begin()) - 1;
  const size_t n = column.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t code = column.GetCode(i);
    if (code >= code_lo && code <= code_hi) {
      emit(static_cast<uint32_t>(i));
    }
  }
}

template <typename Emit>
void FilterDispatch(const enc::EncodedColumn& column, int64_t lo, int64_t hi,
                    Emit&& emit) {
  if (lo > hi) {
    return;
  }
  if (const auto* fr = dynamic_cast<const enc::ForColumn*>(&column)) {
    FilterFor(*fr, lo, hi, emit);
  } else if (const auto* dict =
                 dynamic_cast<const enc::DictColumn*>(&column)) {
    FilterDict(*dict, lo, hi, emit);
  } else {
    FilterGeneric(column, lo, hi, emit);
  }
}

}  // namespace

std::vector<uint32_t> FilterToSelection(const enc::EncodedColumn& column,
                                        int64_t lo, int64_t hi) {
  std::vector<uint32_t> rows;
  FilterDispatch(column, lo, hi, [&rows](uint32_t row) {
    rows.push_back(row);
  });
  return rows;
}

size_t CountInRange(const enc::EncodedColumn& column, int64_t lo,
                    int64_t hi) {
  size_t count = 0;
  FilterDispatch(column, lo, hi, [&count](uint32_t) { ++count; });
  return count;
}

}  // namespace corra::query
