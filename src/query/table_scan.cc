#include "query/table_scan.h"

#include "query/scan.h"

namespace corra::query {

namespace {

// Splits sorted global rows into per-block local selections. Returns the
// (block, local rows, output offset) work list.
struct BlockWork {
  size_t block;
  size_t out_offset;
  std::vector<uint32_t> local_rows;
};

Result<std::vector<BlockWork>> SplitByBlock(
    const CompressedTable& table, std::span<const uint32_t> rows) {
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] < rows[i - 1]) {
      return Status::InvalidArgument("selection not sorted");
    }
  }
  std::vector<BlockWork> work;
  size_t block = 0;
  uint64_t block_begin = 0;
  uint64_t block_end = table.num_blocks() > 0 ? table.block(0).rows() : 0;
  for (size_t i = 0; i < rows.size();) {
    while (block < table.num_blocks() && rows[i] >= block_end) {
      ++block;
      block_begin = block_end;
      block_end += block < table.num_blocks() ? table.block(block).rows()
                                              : 0;
    }
    if (block >= table.num_blocks()) {
      return Status::OutOfRange("selection position beyond table");
    }
    BlockWork w;
    w.block = block;
    w.out_offset = i;
    while (i < rows.size() && rows[i] < block_end) {
      w.local_rows.push_back(
          static_cast<uint32_t>(rows[i] - block_begin));
      ++i;
    }
    work.push_back(std::move(w));
  }
  return work;
}

}  // namespace

Result<std::vector<int64_t>> ScanTableColumn(const CompressedTable& table,
                                             size_t col,
                                             std::span<const uint32_t> rows) {
  if (col >= table.schema().num_fields()) {
    return Status::InvalidArgument("column index out of range");
  }
  CORRA_ASSIGN_OR_RETURN(auto work, SplitByBlock(table, rows));
  std::vector<int64_t> out(rows.size());
  for (const BlockWork& w : work) {
    ScanColumn(table.block(w.block), col, w.local_rows,
               out.data() + w.out_offset);
  }
  return out;
}

Result<TablePair> ScanTablePair(const CompressedTable& table,
                                size_t ref_col, size_t target_col,
                                std::span<const uint32_t> rows) {
  if (ref_col >= table.schema().num_fields() ||
      target_col >= table.schema().num_fields()) {
    return Status::InvalidArgument("column index out of range");
  }
  CORRA_ASSIGN_OR_RETURN(auto work, SplitByBlock(table, rows));
  TablePair out;
  out.reference.resize(rows.size());
  out.target.resize(rows.size());
  for (const BlockWork& w : work) {
    ScanPair(table.block(w.block), ref_col, target_col, w.local_rows,
             out.reference.data() + w.out_offset,
             out.target.data() + w.out_offset);
  }
  return out;
}

}  // namespace corra::query
