#include "query/table_scan.h"

#include "query/scan.h"

namespace corra::query {

namespace {

// Shared implementation over any unsigned row-index width.
template <typename RowT>
Result<std::vector<SelectionSlice>> SplitImpl(
    std::span<const uint64_t> row_offsets, std::span<const RowT> rows) {
  if (row_offsets.empty()) {
    return Status::InvalidArgument("row_offsets needs num_blocks+1 entries");
  }
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] < rows[i - 1]) {
      return Status::InvalidArgument("selection not sorted");
    }
  }
  const size_t num_blocks = row_offsets.size() - 1;
  std::vector<SelectionSlice> slices;
  size_t block = 0;
  for (size_t i = 0; i < rows.size();) {
    const uint64_t pos = rows[i];
    while (block < num_blocks && pos >= row_offsets[block + 1]) {
      ++block;
    }
    if (block >= num_blocks) {
      return Status::OutOfRange("selection position beyond table");
    }
    SelectionSlice slice;
    slice.block = block;
    slice.out_offset = i;
    const uint64_t begin = row_offsets[block];
    const uint64_t end = row_offsets[block + 1];
    while (i < rows.size() && rows[i] < end) {
      slice.local_rows.push_back(static_cast<uint32_t>(rows[i] - begin));
      ++i;
    }
    slices.push_back(std::move(slice));
  }
  return slices;
}

// Cumulative row offsets of an in-memory table (num_blocks + 1 entries).
std::vector<uint64_t> RowOffsets(const CompressedTable& table) {
  std::vector<uint64_t> offsets(table.num_blocks() + 1, 0);
  for (size_t b = 0; b < table.num_blocks(); ++b) {
    offsets[b + 1] = offsets[b] + table.block(b).rows();
  }
  return offsets;
}

}  // namespace

Result<std::vector<SelectionSlice>> SplitSelectionByBlocks(
    std::span<const uint64_t> row_offsets, std::span<const uint64_t> rows) {
  return SplitImpl(row_offsets, rows);
}

Result<std::vector<SelectionSlice>> SplitSelectionByBlocks(
    std::span<const uint64_t> row_offsets, std::span<const uint32_t> rows) {
  return SplitImpl(row_offsets, rows);
}

Result<std::vector<int64_t>> ScanTableColumn(const CompressedTable& table,
                                             size_t col,
                                             std::span<const uint32_t> rows) {
  if (col >= table.schema().num_fields()) {
    return Status::InvalidArgument("column index out of range");
  }
  CORRA_ASSIGN_OR_RETURN(
      auto slices, SplitSelectionByBlocks(RowOffsets(table), rows));
  std::vector<int64_t> out(rows.size());
  for (const SelectionSlice& s : slices) {
    ScanColumn(table.block(s.block), col, s.local_rows,
               out.data() + s.out_offset);
  }
  return out;
}

Result<TablePair> ScanTablePair(const CompressedTable& table,
                                size_t ref_col, size_t target_col,
                                std::span<const uint32_t> rows) {
  if (ref_col >= table.schema().num_fields() ||
      target_col >= table.schema().num_fields()) {
    return Status::InvalidArgument("column index out of range");
  }
  CORRA_ASSIGN_OR_RETURN(
      auto slices, SplitSelectionByBlocks(RowOffsets(table), rows));
  TablePair out;
  out.reference.resize(rows.size());
  out.target.resize(rows.size());
  for (const SelectionSlice& s : slices) {
    ScanPair(table.block(s.block), ref_col, target_col, s.local_rows,
             out.reference.data() + s.out_offset,
             out.target.data() + s.out_offset);
  }
  return out;
}

}  // namespace corra::query
