#include "storage/serde.h"

#include "core/c3/dfor.h"
#include "core/c3/numerical.h"
#include "core/c3/one_to_one.h"
#include "core/diff_encoding.h"
#include "core/hierarchical_encoding.h"
#include "core/multi_ref_encoding.h"
#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"
#include "encoding/rle.h"

namespace corra {

Result<std::unique_ptr<enc::EncodedColumn>> DeserializeEncodedColumn(
    BufferReader* reader) {
  uint8_t scheme_byte = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&scheme_byte));
  switch (static_cast<enc::Scheme>(scheme_byte)) {
    case enc::Scheme::kPlain: {
      CORRA_ASSIGN_OR_RETURN(auto col,
                             enc::PlainColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kBitPack: {
      CORRA_ASSIGN_OR_RETURN(auto col,
                             enc::BitPackColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kFor: {
      CORRA_ASSIGN_OR_RETURN(auto col, enc::ForColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kDict: {
      CORRA_ASSIGN_OR_RETURN(auto col, enc::DictColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kDelta: {
      // DeltaColumn::Deserialize sniffs all three wire layouts behind
      // this scheme byte: legacy out-of-band (fixed 128 interval), the
      // interval-marker extension, and the inline-checkpoint window
      // stream. Round-trips preserve whichever layout was written.
      CORRA_ASSIGN_OR_RETURN(auto col,
                             enc::DeltaColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kRle: {
      CORRA_ASSIGN_OR_RETURN(auto col, enc::RleColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kDiff: {
      CORRA_ASSIGN_OR_RETURN(auto col,
                             DiffEncodedColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kHierarchical: {
      CORRA_ASSIGN_OR_RETURN(auto col,
                             HierarchicalColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kMultiRef: {
      CORRA_ASSIGN_OR_RETURN(auto col, MultiRefColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kC3Dfor: {
      CORRA_ASSIGN_OR_RETURN(auto col, c3::DforColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kC3Numerical: {
      CORRA_ASSIGN_OR_RETURN(auto col,
                             c3::NumericalColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
    case enc::Scheme::kC3OneToOne: {
      CORRA_ASSIGN_OR_RETURN(auto col,
                             c3::OneToOneColumn::Deserialize(reader));
      return std::unique_ptr<enc::EncodedColumn>(std::move(col));
    }
  }
  return Status::Corruption("unknown scheme byte " +
                            std::to_string(scheme_byte));
}

}  // namespace corra
