// Self-contained data block — the unit of the paper's experimental setup:
// "We split all datasets into data blocks of 1M tuples. Each data block is
//  completely self-contained: all information required to decompress it is
//  contained within the block itself." (Sec. 3)
//
// A block owns one encoded column per schema field plus, for string
// columns, the dictionary needed to render codes back to text. Horizontal
// columns reference sibling columns *within the same block*; Build/
// Deserialize resolve those references (topologically, so reference chains
// from the optimizer's future-work mode also bind).

#ifndef CORRA_STORAGE_BLOCK_H_
#define CORRA_STORAGE_BLOCK_H_

#include <memory>
#include <vector>

#include "encoding/encoded_column.h"
#include "encoding/string_dict.h"

namespace corra {

/// Default block granularity (rows), as in the paper.
inline constexpr size_t kDefaultBlockRows = 1'000'000;

/// One encoded column plus its optional string dictionary.
struct BlockColumn {
  std::unique_ptr<enc::EncodedColumn> encoded;
  std::shared_ptr<const enc::StringDictionary> dict;  // Null if not string.
};

class Block {
 public:
  Block(Block&&) = default;
  Block& operator=(Block&&) = default;
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  /// Assembles a block: validates equal row counts and resolves the
  /// reference indices of horizontal columns (rejecting cycles and
  /// out-of-range references).
  static Result<Block> Build(std::vector<BlockColumn> columns);

  size_t num_columns() const { return columns_.size(); }
  size_t rows() const {
    return columns_.empty() ? 0 : columns_[0].encoded->size();
  }

  const enc::EncodedColumn& column(size_t i) const {
    return *columns_[i].encoded;
  }
  const enc::StringDictionary* dictionary(size_t i) const {
    return columns_[i].dict.get();
  }

  /// Compressed footprint of column `i` (encoding + its string
  /// dictionary, matching the paper's Table 2 accounting).
  size_t ColumnSizeBytes(size_t i) const;

  /// Total compressed footprint of the block.
  size_t SizeBytes() const;

  /// Cheap per-block accounting for cache admission and eviction: a
  /// block cache charges Stats().encoded_bytes against its byte budget.
  struct Stats {
    size_t rows = 0;
    size_t columns = 0;
    size_t encoded_bytes = 0;
  };
  Stats GetStats() const {
    return Stats{rows(), num_columns(), SizeBytes()};
  }

  /// Serializes the whole block into one self-contained byte buffer.
  std::vector<uint8_t> Serialize() const;

  /// Rebuilds a block from bytes produced by Serialize. With
  /// `verify` set, runs O(n) integrity checks on horizontal columns.
  static Result<Block> Deserialize(std::span<const uint8_t> bytes,
                                   bool verify = false);

 private:
  explicit Block(std::vector<BlockColumn> columns)
      : columns_(std::move(columns)) {}

  // Resolves ReferenceIndices of all columns; fails on cycles.
  static Status BindAll(std::vector<BlockColumn>* columns);

  std::vector<BlockColumn> columns_;
};

}  // namespace corra

#endif  // CORRA_STORAGE_BLOCK_H_
