#include "storage/table.h"

namespace corra {

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument("column row count mismatch: " +
                                   column.name());
  }
  for (const Column& existing : columns_) {
    if (existing.name() == column.name()) {
      return Status::InvalidArgument("duplicate column name: " +
                                     column.name());
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<size_t> Table::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) {
      return i;
    }
  }
  return Status::NotFound("no column named " + std::string(name));
}

Schema Table::schema() const {
  Schema schema;
  for (const Column& c : columns_) {
    // Names are unique by construction, so AddField cannot fail.
    (void)schema.AddField(c.field());
  }
  return schema;
}

size_t CompressedTable::num_rows() const {
  size_t rows = 0;
  for (const Block& b : blocks_) {
    rows += b.rows();
  }
  return rows;
}

size_t CompressedTable::ColumnSizeBytes(size_t i) const {
  size_t bytes = 0;
  for (const Block& b : blocks_) {
    bytes += b.ColumnSizeBytes(i);
  }
  return bytes;
}

size_t CompressedTable::TotalSizeBytes() const {
  size_t bytes = 0;
  for (const Block& b : blocks_) {
    bytes += b.SizeBytes();
  }
  return bytes;
}

std::vector<int64_t> CompressedTable::DecodeColumn(size_t i) const {
  std::vector<int64_t> out(num_rows());
  size_t offset = 0;
  for (const Block& b : blocks_) {
    b.column(i).DecodeAll(out.data() + offset);
    offset += b.rows();
  }
  return out;
}

}  // namespace corra
