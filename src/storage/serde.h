// Scheme dispatch for deserializing encoded columns from the block format.

#ifndef CORRA_STORAGE_SERDE_H_
#define CORRA_STORAGE_SERDE_H_

#include <memory>

#include "common/buffer.h"
#include "common/result.h"
#include "encoding/encoded_column.h"

namespace corra {

/// Reads one encoded column (scheme byte + payload) from `reader`,
/// dispatching to the matching scheme's Deserialize. Horizontal columns
/// come back unbound; the caller (Block::Deserialize) wires references.
Result<std::unique_ptr<enc::EncodedColumn>> DeserializeEncodedColumn(
    BufferReader* reader);

}  // namespace corra

#endif  // CORRA_STORAGE_SERDE_H_
