// File persistence for compressed tables.
//
// Layout ("CORF" format, version 1):
//   header   : magic, version, schema (names + types), block count
//   directory: per block, the byte offset and length of its payload
//   payloads : the self-contained block byte streams (Block::Serialize)
//   footer   : total file length (truncation tripwire)
//
// Blocks remain individually loadable: ReadBlock seeks one directory
// entry and deserializes a single block without touching the others —
// the on-disk analogue of the paper's self-contained 1M-tuple blocks.

#ifndef CORRA_STORAGE_FILE_IO_H_
#define CORRA_STORAGE_FILE_IO_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace corra {

/// Writes `table` to `path` (overwriting). Fails with an IO-flavoured
/// InvalidArgument if the file cannot be created or written.
Status WriteCompressedTable(const CompressedTable& table,
                            const std::string& path);

/// Reads a whole compressed table back. With `verify`, blocks get the
/// O(n) integrity checks of Block::Deserialize.
Result<CompressedTable> ReadCompressedTable(const std::string& path,
                                            bool verify = false);

/// Metadata obtained without loading any block payload.
struct FileInfo {
  Schema schema;
  size_t num_blocks = 0;
  std::vector<uint64_t> block_offsets;
  std::vector<uint64_t> block_lengths;
};

/// Reads only the header and directory of `path`.
Result<FileInfo> ReadFileInfo(const std::string& path);

/// Loads a single block (0-based index) from `path`.
Result<Block> ReadBlock(const std::string& path, size_t block_index,
                        bool verify = false);

}  // namespace corra

#endif  // CORRA_STORAGE_FILE_IO_H_
