// File persistence for compressed tables.
//
// Layout ("CORF" format, version 3; version-2 files remain readable):
//   header   : magic, version, schema (names + types), block count
//   directory: per block, the byte offset, length, row count, and
//              FNV-1a checksum of its payload
//   stats    : per block, per column, the logical min and max value
//              (v3+; lets a scan skip blocks whose range cannot satisfy
//              a filter without touching the payload)
//   payloads : the self-contained block byte streams (Block::Serialize)
//
// Blocks remain individually loadable: the directory pins down every
// block's position *and* row span, so a reader can route global row
// positions to blocks and fetch exactly one payload — the on-disk
// analogue of the paper's self-contained 1M-tuple blocks.
//
// Two access paths:
//   * The free functions open/parse the file per call (one-shot tools).
//   * CorfFile opens the file once, parses the directory once, and then
//     serves positional per-block reads. Reads use pread(2), so one
//     CorfFile may be shared by many threads without locking — the
//     serving layer (src/serve/) keeps one per open table.

#ifndef CORRA_STORAGE_FILE_IO_H_
#define CORRA_STORAGE_FILE_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace corra {

/// Read-path fault policy of one CorfFile.
///
/// Retry semantics (see failpoint sites corf.pread.* for how they are
/// tested):
///   * EINTR and short reads that made progress are always retried —
///     they are artifacts of signals and readahead, not of the medium.
///   * A read returning 0 bytes inside a block's extent means the file
///     is truncated; that is Corruption and never retried.
///   * Syscall errors (EIO et al.) are retried up to max_read_retries
///     times with exponential backoff + jitter, then surface as
///     StatusCode::kIOError with full locality context.
///   * A checksum mismatch under verify triggers exactly one re-read
///     (a bit flipped in transfer heals; damage on the medium does
///     not), then surfaces as Corruption with expected/actual.
struct CorfFileOptions {
  /// Extra pread attempts after a syscall error (0 = fail immediately).
  uint32_t max_read_retries = 2;
  /// Backoff before syscall-error retry k (0-based) is
  /// min(backoff_base_us << k, backoff_cap_us) plus a deterministic
  /// jitter of at most a quarter step — strictly monotone until capped.
  uint32_t backoff_base_us = 20;
  uint32_t backoff_cap_us = 2000;
};

/// Backoff before syscall-error retry `attempt` (0-based), in
/// microseconds. `salt` decorrelates concurrent retriers (jitter), and
/// makes the schedule deterministic for tests: same salt, same delays.
uint64_t RetryBackoffUs(const CorfFileOptions& options, uint32_t attempt,
                        uint64_t salt);

/// What one block read cost beyond the happy path (optional out-param
/// of ReadBlockBytes/ReadBlock; the serving layer surfaces it as the
/// trace's `retried` annotation).
struct BlockReadStats {
  /// pread calls beyond the one a clean read needs (EINTR, short reads,
  /// syscall-error retries — all paths that re-issued the syscall).
  uint32_t retries = 0;
  /// 1 when a checksum mismatch forced the single re-read.
  uint32_t checksum_rereads = 0;
};

/// Writes `table` to `path` (overwriting). Fails with an IO-flavoured
/// InvalidArgument if the file cannot be created or written.
Status WriteCompressedTable(const CompressedTable& table,
                            const std::string& path);

/// Logical value range of one column within one block. An empty block
/// stores the empty range (min > max), which every filter prunes.
struct ColumnStats {
  int64_t min = 0;
  int64_t max = 0;
};

/// Metadata obtained without loading any block payload.
struct FileInfo {
  Schema schema;
  size_t num_blocks = 0;
  std::vector<uint64_t> block_offsets;
  std::vector<uint64_t> block_lengths;
  /// Rows per block, straight from the directory (no payload touched).
  std::vector<uint64_t> block_rows;
  /// FNV-1a 64 checksum of each payload; verified on read when asked.
  std::vector<uint64_t> block_checksums;
  /// Per-block per-column min/max, block-major (num_blocks * num_fields
  /// entries). Present in v3+ files; empty when reading a v2 file.
  bool has_column_stats = false;
  std::vector<ColumnStats> column_stats;

  /// Stats of column `col` in block `block` (requires has_column_stats).
  const ColumnStats& Stats(size_t block, size_t col) const {
    return column_stats[block * schema.num_fields() + col];
  }

  /// Total rows across all blocks.
  uint64_t TotalRows() const;
};

/// A CORF file opened once: the directory is parsed at Open and every
/// ReadBlock is a single positional read. All methods are const and
/// thread-safe; concurrent ReadBlock calls do not serialize on a seek
/// position.
class CorfFile {
 public:
  static Result<CorfFile> Open(const std::string& path,
                               CorfFileOptions options = {});

  CorfFile(CorfFile&& other) noexcept;
  CorfFile& operator=(CorfFile&& other) noexcept;
  CorfFile(const CorfFile&) = delete;
  CorfFile& operator=(const CorfFile&) = delete;
  ~CorfFile();

  const std::string& path() const { return path_; }
  const FileInfo& info() const { return info_; }
  size_t num_blocks() const { return info_.num_blocks; }

  /// Raw payload bytes of block `block_index`. Transient read failures
  /// are retried per CorfFileOptions; `stats` (optional) reports what
  /// the read cost beyond the happy path.
  Result<std::vector<uint8_t>> ReadBlockBytes(
      size_t block_index, BlockReadStats* stats = nullptr) const;

  /// Deserializes block `block_index`. With `verify`, the payload
  /// checksum is compared against the directory (catching any flipped
  /// byte) and Block::Deserialize runs its O(n) integrity checks; a
  /// mismatch is re-read once before it is ruled Corruption. The
  /// block's row count is always validated against the directory.
  Result<Block> ReadBlock(size_t block_index, bool verify = false,
                          BlockReadStats* stats = nullptr) const;

 private:
  CorfFile(int fd, std::string path, FileInfo info, CorfFileOptions options)
      : fd_(fd), path_(std::move(path)), info_(std::move(info)),
        options_(options) {}

  int fd_ = -1;
  std::string path_;
  FileInfo info_;
  CorfFileOptions options_;
};

/// Reads only the header and directory of `path`.
Result<FileInfo> ReadFileInfo(const std::string& path);

/// Loads a single block (0-based index) from `path`.
Result<Block> ReadBlock(const std::string& path, size_t block_index,
                        bool verify = false);

/// Reads a whole compressed table back. With `verify`, payload checksums
/// are validated and blocks get the O(n) integrity checks of
/// Block::Deserialize.
Result<CompressedTable> ReadCompressedTable(const std::string& path,
                                            bool verify = false);

}  // namespace corra

#endif  // CORRA_STORAGE_FILE_IO_H_
