// Logical schema: column names and logical types.
//
// Every column materializes to int64 logical values (the unit the encoding
// schemes operate on); the logical type records how those values map back
// to domain values: days since epoch for dates, seconds for timestamps,
// cents for money, dictionary codes for strings.

#ifndef CORRA_STORAGE_SCHEMA_H_
#define CORRA_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace corra {

enum class LogicalType : uint8_t {
  kInt64 = 0,
  kDate = 1,       // Days since 1970-01-01.
  kTimestamp = 2,  // Seconds since 1970-01-01 00:00:00 UTC.
  kMoney = 3,      // Cents.
  kString = 4,     // Codes into the column's StringDictionary.
};

std::string_view LogicalTypeToString(LogicalType type);

struct Field {
  std::string name;
  LogicalType type;

  friend bool operator==(const Field&, const Field&) = default;
};

/// An ordered list of fields with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Appends a field; fails on duplicate names.
  Status AddField(Field field);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`.
  Result<size_t> FieldIndex(std::string_view name) const;

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace corra

#endif  // CORRA_STORAGE_SCHEMA_H_
