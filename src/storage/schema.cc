#include "storage/schema.h"

namespace corra {

std::string_view LogicalTypeToString(LogicalType type) {
  switch (type) {
    case LogicalType::kInt64:
      return "int64";
    case LogicalType::kDate:
      return "date";
    case LogicalType::kTimestamp:
      return "timestamp";
    case LogicalType::kMoney:
      return "money";
    case LogicalType::kString:
      return "string";
  }
  return "unknown";
}

Status Schema::AddField(Field field) {
  for (const Field& existing : fields_) {
    if (existing.name == field.name) {
      return Status::InvalidArgument("duplicate field name: " + field.name);
    }
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

Result<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return i;
    }
  }
  return Status::NotFound("no field named " + std::string(name));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += fields_[i].name;
    out += ":";
    out += LogicalTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace corra
