#include "storage/block.h"

#include "core/hierarchical_encoding.h"
#include "storage/serde.h"

namespace corra {

namespace {
constexpr uint32_t kBlockMagic = 0x42524F43;  // "CORB" little-endian.
constexpr uint8_t kBlockVersion = 1;
}  // namespace

Status Block::BindAll(std::vector<BlockColumn>* columns) {
  const size_t n = columns->size();
  // Kahn-style fixpoint: bind a column once all its references are bound.
  // Vertical columns (no references) are bound from the start.
  std::vector<bool> bound(n, false);
  std::vector<std::vector<uint32_t>> refs(n);
  for (size_t i = 0; i < n; ++i) {
    refs[i] = (*columns)[i].encoded->ReferenceIndices();
    bound[i] = refs[i].empty();
    for (uint32_t r : refs[i]) {
      if (r >= n) {
        return Status::Corruption("reference index out of range");
      }
      if (r == i) {
        return Status::Corruption("column references itself");
      }
    }
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < n; ++i) {
      if (bound[i]) {
        continue;
      }
      bool ready = true;
      for (uint32_t r : refs[i]) {
        if (!bound[r]) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        continue;
      }
      std::vector<const enc::EncodedColumn*> resolved;
      resolved.reserve(refs[i].size());
      for (uint32_t r : refs[i]) {
        resolved.push_back((*columns)[r].encoded.get());
      }
      CORRA_RETURN_NOT_OK((*columns)[i].encoded->BindReferences(resolved));
      bound[i] = true;
      progress = true;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!bound[i]) {
      return Status::Corruption("reference cycle among horizontal columns");
    }
  }
  return Status::OK();
}

Result<Block> Block::Build(std::vector<BlockColumn> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("block needs at least one column");
  }
  const size_t rows = columns[0].encoded->size();
  for (const auto& c : columns) {
    if (c.encoded == nullptr) {
      return Status::InvalidArgument("null column in block");
    }
    if (c.encoded->size() != rows) {
      return Status::InvalidArgument("block columns differ in row count");
    }
  }
  CORRA_RETURN_NOT_OK(BindAll(&columns));
  return Block(std::move(columns));
}

size_t Block::ColumnSizeBytes(size_t i) const {
  size_t bytes = columns_[i].encoded->SizeBytes();
  if (columns_[i].dict != nullptr) {
    bytes += columns_[i].dict->SizeBytes();
  }
  return bytes;
}

size_t Block::SizeBytes() const {
  size_t total = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    total += ColumnSizeBytes(i);
  }
  return total;
}

std::vector<uint8_t> Block::Serialize() const {
  BufferWriter writer;
  writer.Write<uint32_t>(kBlockMagic);
  writer.Write<uint8_t>(kBlockVersion);
  writer.Write<uint32_t>(static_cast<uint32_t>(columns_.size()));
  writer.Write<uint64_t>(rows());
  for (const auto& c : columns_) {
    writer.Write<uint8_t>(c.dict != nullptr ? 1 : 0);
    if (c.dict != nullptr) {
      c.dict->Serialize(&writer);
    }
    c.encoded->Serialize(&writer);
  }
  return std::move(writer).Finish();
}

Result<Block> Block::Deserialize(std::span<const uint8_t> bytes,
                                 bool verify) {
  BufferReader reader(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t column_count = 0;
  uint64_t rows = 0;
  CORRA_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kBlockMagic) {
    return Status::Corruption("bad block magic");
  }
  CORRA_RETURN_NOT_OK(reader.Read(&version));
  if (version != kBlockVersion) {
    return Status::Corruption("unsupported block version");
  }
  CORRA_RETURN_NOT_OK(reader.Read(&column_count));
  CORRA_RETURN_NOT_OK(reader.Read(&rows));
  if (column_count == 0) {
    return Status::Corruption("block without columns");
  }
  std::vector<BlockColumn> columns;
  columns.reserve(column_count);
  for (uint32_t i = 0; i < column_count; ++i) {
    BlockColumn column;
    uint8_t has_dict = 0;
    CORRA_RETURN_NOT_OK(reader.Read(&has_dict));
    if (has_dict == 1) {
      CORRA_ASSIGN_OR_RETURN(auto dict,
                             enc::StringDictionary::Deserialize(&reader));
      column.dict =
          std::make_shared<enc::StringDictionary>(std::move(dict));
    } else if (has_dict != 0) {
      return Status::Corruption("bad dictionary flag");
    }
    CORRA_ASSIGN_OR_RETURN(column.encoded,
                           DeserializeEncodedColumn(&reader));
    if (column.encoded->size() != rows) {
      return Status::Corruption("column row count disagrees with header");
    }
    columns.push_back(std::move(column));
  }
  CORRA_RETURN_NOT_OK(BindAll(&columns));
  Block block(std::move(columns));
  if (verify) {
    for (size_t i = 0; i < block.num_columns(); ++i) {
      if (block.column(i).scheme() == enc::Scheme::kHierarchical) {
        const auto& h =
            static_cast<const HierarchicalColumn&>(block.column(i));
        CORRA_RETURN_NOT_OK(h.VerifyWithReference());
      }
    }
  }
  return block;
}

}  // namespace corra
