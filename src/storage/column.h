// In-memory (uncompressed) column: name, logical type, int64 logical
// values, and — for string columns — the shared dictionary mapping codes
// back to strings.

#ifndef CORRA_STORAGE_COLUMN_H_
#define CORRA_STORAGE_COLUMN_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "encoding/string_dict.h"
#include "storage/schema.h"

namespace corra {

class Column {
 public:
  /// Typed factories.
  static Column Int64(std::string name, std::vector<int64_t> values);
  static Column Date(std::string name, std::vector<int64_t> days);
  static Column Timestamp(std::string name, std::vector<int64_t> seconds);
  static Column Money(std::string name, std::vector<int64_t> cents);

  /// Builds a string column: values become dictionary codes in first-seen
  /// order.
  static Column String(std::string name,
                       std::span<const std::string> strings);

  /// A string column from pre-computed codes and a shared dictionary.
  /// Fails if any code is out of the dictionary's range.
  static Result<Column> StringFromCodes(
      std::string name, std::vector<int64_t> codes,
      std::shared_ptr<const enc::StringDictionary> dict);

  const std::string& name() const { return name_; }
  LogicalType type() const { return type_; }
  size_t size() const { return values_.size(); }
  std::span<const int64_t> values() const { return values_; }

  /// The dictionary backing a string column (null otherwise).
  const std::shared_ptr<const enc::StringDictionary>& dictionary() const {
    return dict_;
  }

  /// Renders the value at `row` as text (dates formatted, money in
  /// dollars, strings resolved through the dictionary).
  std::string Render(size_t row) const;

  Field field() const { return Field{name_, type_}; }

 private:
  Column(std::string name, LogicalType type, std::vector<int64_t> values,
         std::shared_ptr<const enc::StringDictionary> dict)
      : name_(std::move(name)),
        type_(type),
        values_(std::move(values)),
        dict_(std::move(dict)) {}

  std::string name_;
  LogicalType type_;
  std::vector<int64_t> values_;
  std::shared_ptr<const enc::StringDictionary> dict_;
};

}  // namespace corra

#endif  // CORRA_STORAGE_COLUMN_H_
