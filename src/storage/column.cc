#include "storage/column.h"

#include <cstdio>

#include "common/date.h"

namespace corra {

Column Column::Int64(std::string name, std::vector<int64_t> values) {
  return Column(std::move(name), LogicalType::kInt64, std::move(values),
                nullptr);
}

Column Column::Date(std::string name, std::vector<int64_t> days) {
  return Column(std::move(name), LogicalType::kDate, std::move(days),
                nullptr);
}

Column Column::Timestamp(std::string name, std::vector<int64_t> seconds) {
  return Column(std::move(name), LogicalType::kTimestamp, std::move(seconds),
                nullptr);
}

Column Column::Money(std::string name, std::vector<int64_t> cents) {
  return Column(std::move(name), LogicalType::kMoney, std::move(cents),
                nullptr);
}

Column Column::String(std::string name,
                      std::span<const std::string> strings) {
  auto dict = std::make_shared<enc::StringDictionary>();
  std::vector<int64_t> codes;
  codes.reserve(strings.size());
  for (const std::string& s : strings) {
    codes.push_back(dict->GetOrInsert(s));
  }
  return Column(std::move(name), LogicalType::kString, std::move(codes),
                std::move(dict));
}

Result<Column> Column::StringFromCodes(
    std::string name, std::vector<int64_t> codes,
    std::shared_ptr<const enc::StringDictionary> dict) {
  if (dict == nullptr) {
    return Status::InvalidArgument("string column needs a dictionary");
  }
  for (int64_t code : codes) {
    if (code < 0 || static_cast<size_t>(code) >= dict->size()) {
      return Status::InvalidArgument("string code out of dictionary range");
    }
  }
  return Column(std::move(name), LogicalType::kString, std::move(codes),
                std::move(dict));
}

std::string Column::Render(size_t row) const {
  const int64_t v = values_[row];
  switch (type_) {
    case LogicalType::kInt64:
      return std::to_string(v);
    case LogicalType::kDate:
      return FormatDate(v);
    case LogicalType::kTimestamp: {
      // Date + seconds-of-day, sufficient for diagnostics.
      const int64_t days = v >= 0 ? v / 86400 : (v - 86399) / 86400;
      const int64_t sod = v - days * 86400;
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %02d:%02d:%02d",
                    static_cast<int>(sod / 3600),
                    static_cast<int>((sod / 60) % 60),
                    static_cast<int>(sod % 60));
      return FormatDate(days) + buf;
    }
    case LogicalType::kMoney: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld.%02lld",
                    static_cast<long long>(v / 100),
                    static_cast<long long>(v < 0 ? -(v % 100) : v % 100));
      return buf;
    }
    case LogicalType::kString:
      return std::string((*dict_)[static_cast<size_t>(v)]);
  }
  return std::to_string(v);
}

}  // namespace corra
