#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "common/buffer.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "query/aggregate.h"

namespace corra {

namespace {

constexpr uint32_t kFileMagic = 0x46524F43;  // "CORF" little-endian.
// Version 2 added per-block row counts and payload checksums to the
// directory (required by the lazy serving layer). Version 3 added the
// per-block per-column min/max stats section (block skipping); v2 files
// remain readable — they simply carry no stats.
constexpr uint8_t kFileVersion = 3;
constexpr uint8_t kMinFileVersion = 2;

// First read size when parsing a header; retried with kMaxHeader when a
// directory does not fit (many thousands of blocks).
constexpr uint64_t kHeaderProbe = 64 << 10;
constexpr uint64_t kMaxHeader = 16 << 20;

// FNV-1a 64-bit over a byte span — the directory's payload checksum.
uint64_t Fnv1a64(std::span<const uint8_t> bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// RAII stdio handle (write path only; reads go through CorfFile's fd).
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* file, const std::vector<uint8_t>& bytes) {
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    return Status::InvalidArgument("short write");
  }
  return Status::OK();
}

// Which file (and block, when payload-level) a read serves — every
// error a read path produces carries this locality.
struct ReadSite {
  const std::string* path;  // Never null.
  int64_t block = -1;       // -1: header/directory read.
};

std::string SiteSuffix(const ReadSite& site, uint64_t offset,
                       size_t length) {
  std::string out = " (file '" + *site.path + "'";
  if (site.block >= 0) {
    out += ", block " + std::to_string(site.block);
  }
  out += ", offset " + std::to_string(offset) + ", length " +
         std::to_string(length) + ")";
  return out;
}

// Safety valve against an injected (or pathological) EINTR storm: real
// signal interruptions are retried unconditionally, but not forever.
constexpr uint32_t kMaxEintrRetries = 1024;

// Positional read of exactly [offset, offset + length), immune to the
// process-wide file position — safe under concurrency.
//
// Fault policy (see CorfFileOptions): EINTR and partial progress are
// retried unconditionally; syscall errors are retried up to
// options.max_read_retries times with RetryBackoffUs sleeps; reading 0
// bytes inside the requested extent is truncation (Corruption, final).
// `retries` (optional) accumulates every pread call beyond the single
// one a clean read needs.
//
// Failpoint sites (tests only; inert otherwise):
//   corf.pread.eio    the next pread call reports EIO without running
//   corf.pread.eintr  the next pread call reports EINTR without running
//   corf.pread.short  the next pread call asks for at most half the
//                     remainder, forcing partial-progress handling
Status PReadRetrying(int fd, uint64_t offset, uint8_t* dst, size_t length,
                     const ReadSite& site, const CorfFileOptions& options,
                     uint32_t* retries) {
  size_t done = 0;
  uint32_t io_errors = 0;
  uint32_t eintrs = 0;
  bool first = true;
  while (done < length) {
    if (!first && retries != nullptr) {
      ++*retries;
    }
    first = false;
    ssize_t n;
    int err = 0;
    if (CORRA_FAILPOINT("corf.pread.eio")) {
      n = -1;
      err = EIO;
    } else if (CORRA_FAILPOINT("corf.pread.eintr")) {
      n = -1;
      err = EINTR;
    } else {
      size_t want = length - done;
      if (want > 1 && CORRA_FAILPOINT("corf.pread.short")) {
        want /= 2;
      }
      n = ::pread(fd, dst + done, want, static_cast<off_t>(offset + done));
      err = errno;
    }
    if (n < 0) {
      if (err == EINTR) {
        if (++eintrs > kMaxEintrRetries) {
          return Status::IOError(
              "pread interrupted (EINTR) " +
              std::to_string(kMaxEintrRetries) + " times" +
              SiteSuffix(site, offset, length));
        }
        continue;  // Interrupted by a signal; always retryable.
      }
      if (io_errors++ >= options.max_read_retries) {
        return Status::IOError(
            "pread failed: " + std::string(std::strerror(err)) + " after " +
            std::to_string(io_errors) + " attempt(s)" +
            SiteSuffix(site, offset, length));
      }
      const uint64_t backoff_us =
          RetryBackoffUs(options, io_errors - 1, offset);
      if (backoff_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      }
      continue;
    }
    if (n == 0) {
      return Status::Corruption(
          "file truncated: no data at offset " +
          std::to_string(offset + done) + SiteSuffix(site, offset, length));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Header + directory + stats bytes for a table about to be written.
std::vector<uint8_t> BuildHeader(const Schema& schema,
                                 const std::vector<uint64_t>& offsets,
                                 const std::vector<uint64_t>& lengths,
                                 const std::vector<uint64_t>& rows,
                                 const std::vector<uint64_t>& checksums,
                                 const std::vector<ColumnStats>& stats) {
  BufferWriter writer;
  writer.Write<uint32_t>(kFileMagic);
  writer.Write<uint8_t>(kFileVersion);
  writer.Write<uint32_t>(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    writer.WriteString(field.name);
    writer.Write<uint8_t>(static_cast<uint8_t>(field.type));
  }
  writer.Write<uint32_t>(static_cast<uint32_t>(offsets.size()));
  for (size_t b = 0; b < offsets.size(); ++b) {
    writer.Write<uint64_t>(offsets[b]);
    writer.Write<uint64_t>(lengths[b]);
    writer.Write<uint64_t>(rows[b]);
    writer.Write<uint64_t>(checksums[b]);
  }
  for (const ColumnStats& s : stats) {
    writer.Write<int64_t>(s.min);
    writer.Write<int64_t>(s.max);
  }
  return std::move(writer).Finish();
}

// Bytes per directory entry: offset, length, rows, checksum.
constexpr uint64_t kDirectoryEntryBytes = 4 * sizeof(uint64_t);
// Bytes per stats entry (v3+): min, max.
constexpr uint64_t kStatsEntryBytes = 2 * sizeof(int64_t);

// Parses magic, version, schema, and block count, leaving `reader`
// positioned at the first directory entry. Fills info.schema,
// info.num_blocks, and *version. On failure, `*retryable` tells whether
// a larger prefix could change the outcome (semantic failures — wrong
// magic, version, type — cannot be cured by more bytes).
Status ParsePreamble(BufferReader* reader, FileInfo* info, uint8_t* version,
                     bool* retryable) {
  *retryable = true;
  uint32_t magic = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&magic));
  if (magic != kFileMagic) {
    *retryable = false;
    return Status::Corruption("not a Corra file (bad magic)");
  }
  CORRA_RETURN_NOT_OK(reader->Read(version));
  if (*version < kMinFileVersion || *version > kFileVersion) {
    *retryable = false;
    return Status::Corruption("unsupported Corra file version");
  }
  uint32_t field_count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&field_count));
  for (uint32_t i = 0; i < field_count; ++i) {
    std::string name;
    uint8_t type = 0;
    CORRA_RETURN_NOT_OK(reader->ReadString(&name));
    CORRA_RETURN_NOT_OK(reader->Read(&type));
    if (type > static_cast<uint8_t>(LogicalType::kString)) {
      *retryable = false;
      return Status::Corruption("unknown logical type in schema");
    }
    CORRA_RETURN_NOT_OK(info->schema.AddField(
        Field{std::move(name), static_cast<LogicalType>(type)}));
  }
  uint32_t block_count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&block_count));
  info->num_blocks = block_count;
  return Status::OK();
}

Status ParseDirectory(BufferReader* reader, uint64_t file_size,
                      FileInfo* info) {
  for (size_t b = 0; b < info->num_blocks; ++b) {
    uint64_t offset = 0;
    uint64_t length = 0;
    uint64_t rows = 0;
    uint64_t checksum = 0;
    CORRA_RETURN_NOT_OK(reader->Read(&offset));
    CORRA_RETURN_NOT_OK(reader->Read(&length));
    CORRA_RETURN_NOT_OK(reader->Read(&rows));
    CORRA_RETURN_NOT_OK(reader->Read(&checksum));
    if (offset > file_size || length > file_size - offset) {
      return Status::Corruption("block directory entry out of bounds");
    }
    info->block_offsets.push_back(offset);
    info->block_lengths.push_back(length);
    info->block_rows.push_back(rows);
    info->block_checksums.push_back(checksum);
  }
  return Status::OK();
}

// Parses the v3+ per-block per-column min/max section.
Status ParseStats(BufferReader* reader, FileInfo* info) {
  const size_t entries = info->num_blocks * info->schema.num_fields();
  info->column_stats.reserve(entries);
  for (size_t i = 0; i < entries; ++i) {
    ColumnStats stats;
    CORRA_RETURN_NOT_OK(reader->Read(&stats.min));
    CORRA_RETURN_NOT_OK(reader->Read(&stats.max));
    info->column_stats.push_back(stats);
  }
  info->has_column_stats = true;
  return Status::OK();
}

Result<FileInfo> ParseHeader(int fd, uint64_t file_size,
                             const std::string& path,
                             const CorfFileOptions& options) {
  const ReadSite site{&path, -1};
  // Probe a small prefix: enough for the preamble (magic, version,
  // schema, block count) of any sane file, and usually for the whole
  // directory too. Magic/version/schema corruption fails here without
  // any further read.
  const uint64_t probe = std::min<uint64_t>(file_size, kHeaderProbe);
  std::vector<uint8_t> prefix(probe);
  CORRA_RETURN_NOT_OK(PReadRetrying(fd, 0, prefix.data(), prefix.size(),
                                    site, options, nullptr));
  FileInfo info;
  BufferReader reader(prefix);
  uint8_t version = 0;
  bool retryable = false;
  Status preamble = ParsePreamble(&reader, &info, &version, &retryable);
  if (!preamble.ok()) {
    // A schema larger than the probe is the only curable failure:
    // retry once with the full header budget. Semantic corruption
    // stops here without another read.
    const uint64_t budget = std::min(file_size, kMaxHeader);
    if (!retryable || prefix.size() >= budget) {
      return preamble;
    }
    prefix.resize(budget);
    CORRA_RETURN_NOT_OK(PReadRetrying(fd, 0, prefix.data(), prefix.size(),
                                      site, options, nullptr));
    info = FileInfo{};
    reader = BufferReader(prefix);
    CORRA_RETURN_NOT_OK(ParsePreamble(&reader, &info, &version, &retryable));
  }

  // The preamble pins down the exact header size; re-read precisely
  // that when the directory (or stats section) spills past the probe.
  const uint64_t stats_bytes =
      version >= 3
          ? info.num_blocks * info.schema.num_fields() * kStatsEntryBytes
          : 0;
  const uint64_t header_bytes = reader.position() +
                                info.num_blocks * kDirectoryEntryBytes +
                                stats_bytes;
  if (header_bytes > kMaxHeader) {
    return Status::Corruption("header implausibly large");
  }
  if (header_bytes > prefix.size()) {
    if (header_bytes > file_size) {
      return Status::Corruption("file truncated inside block directory");
    }
    prefix.resize(header_bytes);
    CORRA_RETURN_NOT_OK(PReadRetrying(fd, 0, prefix.data(), prefix.size(),
                                      site, options, nullptr));
    info = FileInfo{};
    reader = BufferReader(prefix);
    CORRA_RETURN_NOT_OK(ParsePreamble(&reader, &info, &version, &retryable));
  }
  CORRA_RETURN_NOT_OK(ParseDirectory(&reader, file_size, &info));
  if (version >= 3) {
    CORRA_RETURN_NOT_OK(ParseStats(&reader, &info));
  }
  return info;
}

}  // namespace

uint64_t RetryBackoffUs(const CorfFileOptions& options, uint32_t attempt,
                        uint64_t salt) {
  if (options.backoff_base_us == 0) {
    return 0;
  }
  const uint64_t base = options.backoff_base_us;
  uint64_t step = attempt < 32 ? base << attempt : UINT64_MAX;
  if (options.backoff_cap_us > 0 && step > options.backoff_cap_us) {
    step = options.backoff_cap_us;
  }
  // Deterministic jitter in [0, step/4): decorrelates concurrent
  // retriers without breaking monotonicity — step + step/4 is still
  // below the next step's 2x until the cap flattens the curve.
  uint64_t x = salt * 0x9E3779B97F4A7C15ull + attempt + 1;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  const uint64_t jitter = step >= 4 ? x % (step / 4) : 0;
  return step + jitter;
}

uint64_t FileInfo::TotalRows() const {
  uint64_t total = 0;
  for (uint64_t rows : block_rows) {
    total += rows;
  }
  return total;
}

Status WriteCompressedTable(const CompressedTable& table,
                            const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot create file: " + path);
  }
  // Serialize blocks first to learn their lengths and checksums, and
  // compute the per-block per-column min/max the v3 stats section
  // persists (aggregate pushdown runs on the compressed columns, so
  // this pass never materializes a block).
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(table.num_blocks());
  std::vector<uint64_t> rows(table.num_blocks());
  std::vector<uint64_t> checksums(table.num_blocks());
  std::vector<ColumnStats> stats;
  stats.reserve(table.num_blocks() * table.schema().num_fields());
  for (size_t b = 0; b < table.num_blocks(); ++b) {
    payloads.push_back(table.block(b).Serialize());
    rows[b] = table.block(b).rows();
    checksums[b] = Fnv1a64(payloads.back());
    for (size_t c = 0; c < table.block(b).num_columns(); ++c) {
      const auto mm = query::MinMaxColumn(table.block(b).column(c));
      // An empty block stores the empty range; every filter prunes it.
      stats.push_back(mm ? ColumnStats{mm->min, mm->max}
                         : ColumnStats{INT64_MAX, INT64_MIN});
    }
  }
  std::vector<uint64_t> offsets(payloads.size());
  std::vector<uint64_t> lengths(payloads.size());
  // Two-pass: header size depends only on counts and name lengths, so
  // build it with dummy offsets to learn its size, then fill in.
  std::vector<uint8_t> header =
      BuildHeader(table.schema(), offsets, lengths, rows, checksums, stats);
  uint64_t cursor = header.size();
  for (size_t b = 0; b < payloads.size(); ++b) {
    offsets[b] = cursor;
    lengths[b] = payloads[b].size();
    cursor += payloads[b].size();
  }
  header =
      BuildHeader(table.schema(), offsets, lengths, rows, checksums, stats);

  CORRA_RETURN_NOT_OK(WriteAll(file.get(), header));
  for (const auto& payload : payloads) {
    CORRA_RETURN_NOT_OK(WriteAll(file.get(), payload));
  }
  if (std::fflush(file.get()) != 0) {
    return Status::InvalidArgument("flush failed: " + path);
  }
  return Status::OK();
}

Result<CorfFile> CorfFile::Open(const std::string& path,
                                CorfFileOptions options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open file: " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Corruption("cannot determine file size: " + path);
  }
  auto info = ParseHeader(fd, static_cast<uint64_t>(st.st_size), path,
                          options);
  if (!info.ok()) {
    ::close(fd);
    return info.status();
  }
  return CorfFile(fd, path, std::move(info).value(), options);
}

CorfFile::CorfFile(CorfFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      info_(std::move(other.info_)),
      options_(other.options_) {}

CorfFile& CorfFile::operator=(CorfFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    info_ = std::move(other.info_);
    options_ = other.options_;
  }
  return *this;
}

CorfFile::~CorfFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

namespace {

std::string ChecksumHex(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, value);
  return buf;
}

}  // namespace

Result<std::vector<uint8_t>> CorfFile::ReadBlockBytes(
    size_t block_index, BlockReadStats* stats) const {
  if (block_index >= info_.num_blocks) {
    return Status::OutOfRange(
        "block index " + std::to_string(block_index) +
        " out of range (file '" + path_ + "' has " +
        std::to_string(info_.num_blocks) + " blocks)");
  }
  const ReadSite site{&path_, static_cast<int64_t>(block_index)};
  std::vector<uint8_t> bytes(info_.block_lengths[block_index]);
  uint32_t retries = 0;
  Status read = PReadRetrying(fd_, info_.block_offsets[block_index],
                              bytes.data(), bytes.size(), site, options_,
                              &retries);
  if (stats != nullptr) {
    stats->retries += retries;
  }
  // Cold-read accounting: every payload fetched from disk, process
  // wide. The serving layer's cache.misses counts pin-level misses;
  // these count the I/O they actually caused (one read per miss) plus
  // any non-cached one-shot readers. read_retries counts re-issued
  // pread calls (EINTR, short reads, syscall-error retries) and
  // read_errors the reads that failed for good.
  if (obs::Enabled()) {
    static obs::Counter& reads =
        obs::Registry::Default().counter("storage.block_reads");
    static obs::Counter& read_bytes =
        obs::Registry::Default().counter("storage.block_read_bytes");
    static obs::Counter& read_retries =
        obs::Registry::Default().counter("storage.read_retries");
    static obs::Counter& read_errors =
        obs::Registry::Default().counter("storage.read_errors");
    if (retries > 0) {
      read_retries.Add(retries);
    }
    if (!read.ok()) {
      read_errors.Increment();
    } else {
      reads.Increment();
      read_bytes.Add(bytes.size());
    }
  }
  CORRA_RETURN_NOT_OK(read);
  // Fault injection for the verify/quarantine paths: damage the payload
  // *after* a successful read, the way a bad cable or DMA error would.
  if (!bytes.empty() && CORRA_FAILPOINT("corf.payload.bitflip")) {
    bytes[bytes.size() / 2] ^= 0x40;
  }
  return bytes;
}

Result<Block> CorfFile::ReadBlock(size_t block_index, bool verify,
                                  BlockReadStats* stats) const {
  CORRA_ASSIGN_OR_RETURN(auto bytes, ReadBlockBytes(block_index, stats));
  if (verify && Fnv1a64(bytes) != info_.block_checksums[block_index]) {
    // One re-read distinguishes transient from persistent corruption: a
    // bit flipped in transfer heals, damage on the medium does not.
    if (stats != nullptr) {
      stats->checksum_rereads += 1;
    }
    if (obs::Enabled()) {
      static obs::Counter& read_retries =
          obs::Registry::Default().counter("storage.read_retries");
      read_retries.Increment();
    }
    CORRA_ASSIGN_OR_RETURN(bytes, ReadBlockBytes(block_index, stats));
    const uint64_t actual = Fnv1a64(bytes);
    const uint64_t expected = info_.block_checksums[block_index];
    if (actual != expected) {
      if (obs::Enabled()) {
        static obs::Counter& read_errors =
            obs::Registry::Default().counter("storage.read_errors");
        read_errors.Increment();
      }
      return Status::Corruption(
          "block payload checksum mismatch after re-read: expected " +
          ChecksumHex(expected) + ", actual " + ChecksumHex(actual) +
          SiteSuffix(ReadSite{&path_, static_cast<int64_t>(block_index)},
                     info_.block_offsets[block_index],
                     info_.block_lengths[block_index]));
    }
  }
  auto deserialized = Block::Deserialize(bytes, verify);
  if (!deserialized.ok()) {
    const Status& st = deserialized.status();
    return Status(st.code(),
                  st.message() +
                      SiteSuffix(ReadSite{&path_,
                                          static_cast<int64_t>(block_index)},
                                 info_.block_offsets[block_index],
                                 info_.block_lengths[block_index]));
  }
  Block block = std::move(deserialized).value();
  if (block.rows() != info_.block_rows[block_index]) {
    return Status::Corruption(
        "block row count disagrees with directory: decoded " +
        std::to_string(block.rows()) + ", directory says " +
        std::to_string(info_.block_rows[block_index]) +
        SiteSuffix(ReadSite{&path_, static_cast<int64_t>(block_index)},
                   info_.block_offsets[block_index],
                   info_.block_lengths[block_index]));
  }
  return block;
}

Result<FileInfo> ReadFileInfo(const std::string& path) {
  CORRA_ASSIGN_OR_RETURN(CorfFile file, CorfFile::Open(path));
  return file.info();
}

Result<Block> ReadBlock(const std::string& path, size_t block_index,
                        bool verify) {
  CORRA_ASSIGN_OR_RETURN(CorfFile file, CorfFile::Open(path));
  return file.ReadBlock(block_index, verify);
}

Result<CompressedTable> ReadCompressedTable(const std::string& path,
                                            bool verify) {
  CORRA_ASSIGN_OR_RETURN(CorfFile file, CorfFile::Open(path));
  std::vector<Block> blocks;
  blocks.reserve(file.num_blocks());
  for (size_t b = 0; b < file.num_blocks(); ++b) {
    CORRA_ASSIGN_OR_RETURN(Block block, file.ReadBlock(b, verify));
    blocks.push_back(std::move(block));
  }
  Schema schema = file.info().schema;
  return CompressedTable(std::move(schema), std::move(blocks));
}

}  // namespace corra
