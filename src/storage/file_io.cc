#include "storage/file_io.h"

#include <cstdio>
#include <memory>

#include "common/buffer.h"

namespace corra {

namespace {

constexpr uint32_t kFileMagic = 0x46524F43;  // "CORF" little-endian.
constexpr uint8_t kFileVersion = 1;

// RAII stdio handle.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* file, const std::vector<uint8_t>& bytes) {
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    return Status::InvalidArgument("short write");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadRange(std::FILE* file, uint64_t offset,
                                       uint64_t length) {
  if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::Corruption("seek failed");
  }
  std::vector<uint8_t> bytes(length);
  if (length > 0 && std::fread(bytes.data(), 1, length, file) != length) {
    return Status::Corruption("short read");
  }
  return bytes;
}

// Header + directory bytes for a table about to be written.
std::vector<uint8_t> BuildHeader(const Schema& schema,
                                 const std::vector<uint64_t>& offsets,
                                 const std::vector<uint64_t>& lengths) {
  BufferWriter writer;
  writer.Write<uint32_t>(kFileMagic);
  writer.Write<uint8_t>(kFileVersion);
  writer.Write<uint32_t>(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& field : schema.fields()) {
    writer.WriteString(field.name);
    writer.Write<uint8_t>(static_cast<uint8_t>(field.type));
  }
  writer.Write<uint32_t>(static_cast<uint32_t>(offsets.size()));
  for (size_t b = 0; b < offsets.size(); ++b) {
    writer.Write<uint64_t>(offsets[b]);
    writer.Write<uint64_t>(lengths[b]);
  }
  return std::move(writer).Finish();
}

Result<FileInfo> ParseHeader(std::FILE* file) {
  // Headers are small; read a generous prefix.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::Corruption("seek failed");
  }
  const long file_size = std::ftell(file);
  if (file_size < 0) {
    return Status::Corruption("cannot determine file size");
  }
  constexpr long kMaxHeader = 1 << 20;
  CORRA_ASSIGN_OR_RETURN(
      auto prefix,
      ReadRange(file, 0,
                static_cast<uint64_t>(std::min(file_size, kMaxHeader))));

  BufferReader reader(prefix);
  uint32_t magic = 0;
  uint8_t version = 0;
  CORRA_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kFileMagic) {
    return Status::Corruption("not a Corra file (bad magic)");
  }
  CORRA_RETURN_NOT_OK(reader.Read(&version));
  if (version != kFileVersion) {
    return Status::Corruption("unsupported Corra file version");
  }
  uint32_t field_count = 0;
  CORRA_RETURN_NOT_OK(reader.Read(&field_count));
  FileInfo info;
  for (uint32_t i = 0; i < field_count; ++i) {
    std::string name;
    uint8_t type = 0;
    CORRA_RETURN_NOT_OK(reader.ReadString(&name));
    CORRA_RETURN_NOT_OK(reader.Read(&type));
    if (type > static_cast<uint8_t>(LogicalType::kString)) {
      return Status::Corruption("unknown logical type in schema");
    }
    CORRA_RETURN_NOT_OK(info.schema.AddField(
        Field{std::move(name), static_cast<LogicalType>(type)}));
  }
  uint32_t block_count = 0;
  CORRA_RETURN_NOT_OK(reader.Read(&block_count));
  info.num_blocks = block_count;
  for (uint32_t b = 0; b < block_count; ++b) {
    uint64_t offset = 0;
    uint64_t length = 0;
    CORRA_RETURN_NOT_OK(reader.Read(&offset));
    CORRA_RETURN_NOT_OK(reader.Read(&length));
    if (offset > static_cast<uint64_t>(file_size) ||
        length > static_cast<uint64_t>(file_size) - offset) {
      return Status::Corruption("block directory entry out of bounds");
    }
    info.block_offsets.push_back(offset);
    info.block_lengths.push_back(length);
  }
  return info;
}

}  // namespace

Status WriteCompressedTable(const CompressedTable& table,
                            const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot create file: " + path);
  }
  // Serialize blocks first to learn their lengths.
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(table.num_blocks());
  for (size_t b = 0; b < table.num_blocks(); ++b) {
    payloads.push_back(table.block(b).Serialize());
  }
  std::vector<uint64_t> offsets(payloads.size());
  std::vector<uint64_t> lengths(payloads.size());
  // Two-pass: header size depends only on counts and name lengths, so
  // build it with dummy offsets to learn its size, then fill in.
  std::vector<uint8_t> header =
      BuildHeader(table.schema(), offsets, lengths);
  uint64_t cursor = header.size();
  for (size_t b = 0; b < payloads.size(); ++b) {
    offsets[b] = cursor;
    lengths[b] = payloads[b].size();
    cursor += payloads[b].size();
  }
  header = BuildHeader(table.schema(), offsets, lengths);

  CORRA_RETURN_NOT_OK(WriteAll(file.get(), header));
  for (const auto& payload : payloads) {
    CORRA_RETURN_NOT_OK(WriteAll(file.get(), payload));
  }
  if (std::fflush(file.get()) != 0) {
    return Status::InvalidArgument("flush failed: " + path);
  }
  return Status::OK();
}

Result<FileInfo> ReadFileInfo(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  return ParseHeader(file.get());
}

Result<Block> ReadBlock(const std::string& path, size_t block_index,
                        bool verify) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  CORRA_ASSIGN_OR_RETURN(FileInfo info, ParseHeader(file.get()));
  if (block_index >= info.num_blocks) {
    return Status::OutOfRange("block index out of range");
  }
  CORRA_ASSIGN_OR_RETURN(
      auto bytes, ReadRange(file.get(), info.block_offsets[block_index],
                            info.block_lengths[block_index]));
  return Block::Deserialize(bytes, verify);
}

Result<CompressedTable> ReadCompressedTable(const std::string& path,
                                            bool verify) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  CORRA_ASSIGN_OR_RETURN(FileInfo info, ParseHeader(file.get()));
  std::vector<Block> blocks;
  blocks.reserve(info.num_blocks);
  for (size_t b = 0; b < info.num_blocks; ++b) {
    CORRA_ASSIGN_OR_RETURN(
        auto bytes, ReadRange(file.get(), info.block_offsets[b],
                              info.block_lengths[b]));
    CORRA_ASSIGN_OR_RETURN(Block block, Block::Deserialize(bytes, verify));
    blocks.push_back(std::move(block));
  }
  return CompressedTable(std::move(info.schema), std::move(blocks));
}

}  // namespace corra
