// Table (uncompressed columns) and CompressedTable (schema + blocks).

#ifndef CORRA_STORAGE_TABLE_H_
#define CORRA_STORAGE_TABLE_H_

#include <string_view>
#include <vector>

#include "storage/block.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace corra {

/// An in-memory table of uncompressed columns with equal row counts.
class Table {
 public:
  Table() = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Appends a column; fails on duplicate names or row-count mismatch.
  Status AddColumn(Column column);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  const Column& column(size_t i) const { return columns_[i]; }
  Result<size_t> ColumnIndex(std::string_view name) const;

  Schema schema() const;

 private:
  std::vector<Column> columns_;
};

/// The output of CorraCompressor: a schema plus self-contained blocks.
class CompressedTable {
 public:
  CompressedTable(Schema schema, std::vector<Block> blocks)
      : schema_(std::move(schema)), blocks_(std::move(blocks)) {}

  CompressedTable(CompressedTable&&) = default;
  CompressedTable& operator=(CompressedTable&&) = default;
  CompressedTable(const CompressedTable&) = delete;
  CompressedTable& operator=(const CompressedTable&) = delete;

  const Schema& schema() const { return schema_; }
  size_t num_blocks() const { return blocks_.size(); }
  const Block& block(size_t b) const { return blocks_[b]; }

  size_t num_rows() const;

  /// Compressed footprint of column `i` summed over all blocks
  /// (the paper's Table 2 metric).
  size_t ColumnSizeBytes(size_t i) const;

  /// Total compressed footprint.
  size_t TotalSizeBytes() const;

  /// Decompresses column `i` across all blocks into a vector
  /// (integration-test convenience).
  std::vector<int64_t> DecodeColumn(size_t i) const;

 private:
  Schema schema_;
  std::vector<Block> blocks_;
};

}  // namespace corra

#endif  // CORRA_STORAGE_TABLE_H_
