// Synthetic DMV registrations (state, city, zip_code) with the hierarchy
// the paper exploits in Sec. 2.2:
//
//   * ~62 state codes, heavily skewed toward NY (registrations dataset);
//   * ~2,500 distinct cities, Zipf-popular, each belonging to one state;
//   * each city owns 1..127 zip codes (Zipf-sized, popular cities have
//     more), ~100k distinct zips overall.
//
// Calibration targets (full scale 12,176,621 rows, paper Table 2):
//   zip  vertical ~ 17 bits/row  (FOR over the 5-digit zip domain)
//   zip  hierarchical ~ 7 bits/row + flattened metadata  (53.7% saving)
//   city vertical ~ 12-bit dict codes + flattened strings
//   city hierarchical vs state: small saving (1.8%) — strings dominate.

#ifndef CORRA_DATAGEN_DMV_H_
#define CORRA_DATAGEN_DMV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace corra::datagen {

/// DMV row count of the paper's snapshot.
inline constexpr size_t kDmvRows = 12'176'621;

struct DmvData {
  std::vector<std::string> state;  // e.g. "NY"
  std::vector<std::string> city;
  std::vector<int64_t> zip;
};

/// Generates `rows` registrations (deterministic in `seed`).
DmvData GenerateDmv(size_t rows, uint64_t seed = 42);

/// Wraps the generated columns in a Table (state, city, zip).
Result<Table> MakeDmvTable(size_t rows, uint64_t seed = 42);

/// Code-based variant for large-scale benchmarks: dense codes plus the two
/// name dictionaries instead of one std::string per row. Logically
/// equivalent to GenerateDmv with the same seed.
struct DmvCodes {
  std::vector<int64_t> state;  // Codes into state_names.
  std::vector<int64_t> city;   // Codes into city_names.
  std::vector<int64_t> zip;
  std::vector<std::string> state_names;
  std::vector<std::string> city_names;
};
DmvCodes GenerateDmvCodes(size_t rows, uint64_t seed = 42);

/// Table built from GenerateDmvCodes (string columns share dictionaries).
Result<Table> MakeDmvTableFromCodes(size_t rows, uint64_t seed = 42);

}  // namespace corra::datagen

#endif  // CORRA_DATAGEN_DMV_H_
