// Synthetic NYC Yellow Taxi trips, calibrated to the correlation structure
// the paper exploits (Sec. 2.1 for (pickup, dropoff) and Sec. 2.3 for
// total_amount):
//
//   * pickup timestamps over one year, plus a handful of corrupted rows
//     dated years off (real TLC data contains such rows, and the paper's
//     cleaning — dropoff >= pickup, money in [0, $100] — does not remove
//     them); these widen the vertical FOR range to ~29 bits;
//   * ride duration log-normal (median ~11 min) with a rare data-glitch
//     tail up to ~12 days, bounding dropoff - pickup at 20 bits;
//   * monetary columns (cents) in three groups:
//       A: mta_tax, fare_amount, improvement_surcharge, extra,
//          tip_amount, tolls_amount
//       B: congestion_surcharge
//       C: airport_fee
//     total_amount = A / A+B / A+C / A+B+C / none with the paper's
//     Table 1 probabilities (31.19 / 62.44 / 2.69 / 3.33 / 0.32 %).

#ifndef CORRA_DATAGEN_TAXI_H_
#define CORRA_DATAGEN_TAXI_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace corra::datagen {

/// Cleaned trip count of the paper's one-year snapshot.
inline constexpr size_t kTaxiRows = 37'891'377;

/// The paper's Table 1 mix.
struct TaxiFormulaProbabilities {
  double a = 0.3119;
  double a_b = 0.6244;
  double a_c = 0.0269;
  double a_b_c = 0.0333;
  double outlier = 0.0032;
};

struct TaxiTrips {
  std::vector<int64_t> pickup;   // seconds since epoch
  std::vector<int64_t> dropoff;  // seconds since epoch
  // Group A:
  std::vector<int64_t> mta_tax;                // cents
  std::vector<int64_t> fare_amount;            // cents
  std::vector<int64_t> improvement_surcharge;  // cents
  std::vector<int64_t> extra;                  // cents
  std::vector<int64_t> tip_amount;             // cents
  std::vector<int64_t> tolls_amount;           // cents
  // Group B:
  std::vector<int64_t> congestion_surcharge;   // cents
  // Group C:
  std::vector<int64_t> airport_fee;            // cents
  std::vector<int64_t> total_amount;           // cents
};

/// Generates `rows` trips (deterministic in `seed`).
TaxiTrips GenerateTaxiTrips(size_t rows, uint64_t seed = 42,
                            const TaxiFormulaProbabilities& probs = {});

/// Wraps the trips in a Table. Column order:
/// pickup, dropoff, mta_tax, fare_amount, improvement_surcharge, extra,
/// tip_amount, tolls_amount, congestion_surcharge, airport_fee,
/// total_amount.
Result<Table> MakeTaxiTable(size_t rows, uint64_t seed = 42,
                            const TaxiFormulaProbabilities& probs = {});

/// Column indices in the table built by MakeTaxiTable.
struct TaxiColumns {
  static constexpr size_t kPickup = 0;
  static constexpr size_t kDropoff = 1;
  static constexpr size_t kMtaTax = 2;
  static constexpr size_t kFareAmount = 3;
  static constexpr size_t kImprovementSurcharge = 4;
  static constexpr size_t kExtra = 5;
  static constexpr size_t kTipAmount = 6;
  static constexpr size_t kTollsAmount = 7;
  static constexpr size_t kCongestionSurcharge = 8;
  static constexpr size_t kAirportFee = 9;
  static constexpr size_t kTotalAmount = 10;
};

}  // namespace corra::datagen

#endif  // CORRA_DATAGEN_TAXI_H_
