// Synthetic LDBC SNB `message` columns (countryid, ip) — the hierarchical
// pair the paper evaluates at SF 30 (Sec. 2.2 / Fig. 5, 7):
//
//   * 111 countries (LDBC's place dictionary), Zipf-popular;
//   * each country owns a pool of unique IPv4 addresses (up to ~64k for
//     the largest countries, ~1M distinct IPs overall);
//   * a message's ip is drawn from its country's pool.
//
// Calibration targets (full scale 76,388,857 rows, paper Table 2):
//   ip vertical     ~ dict codes of ~1M uniques (20 bits/row) + dict
//   ip hierarchical ~ 16 bits/row + per-country metadata (17.1% saving).

#ifndef CORRA_DATAGEN_LDBC_H_
#define CORRA_DATAGEN_LDBC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace corra::datagen {

/// message row count at SF 30 (the paper's setting).
inline constexpr size_t kMessageRowsSf30 = 76'388'857;

struct LdbcMessages {
  std::vector<int64_t> countryid;  // Dense 0..110.
  std::vector<int64_t> ip;         // IPv4 as integer.
};

/// Generates `rows` messages (deterministic in `seed`).
LdbcMessages GenerateLdbcMessages(size_t rows, uint64_t seed = 42);

/// Wraps the generated columns in a Table (countryid, ip).
Result<Table> MakeLdbcTable(size_t rows, uint64_t seed = 42);

}  // namespace corra::datagen

#endif  // CORRA_DATAGEN_LDBC_H_
