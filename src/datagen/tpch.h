// TPC-H lineitem date columns, generated with the exact dbgen rules of the
// TPC-H 3.0.1 specification:
//
//   O_ORDERDATE   uniform in [1992-01-01, 1998-12-31 - 151 days]
//   L_SHIPDATE    = O_ORDERDATE + random[1, 121]
//   L_COMMITDATE  = O_ORDERDATE + random[30, 90]
//   L_RECEIPTDATE = L_SHIPDATE  + random[1, 30]
//
// These rules make the diffs Corra exploits *exactly* the paper's:
// receiptdate - shipdate in [1, 30] (5 bits) and commitdate - shipdate in
// [-91, 89] (8 bits), versus 12 bits for the raw ~2557-day date domain —
// reproducing Table 2's 89.99 -> 37.49 MB and 89.99 -> 59.99 MB at SF 10.

#ifndef CORRA_DATAGEN_TPCH_H_
#define CORRA_DATAGEN_TPCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace corra::datagen {

/// lineitem row count at scale factor 10 (the paper's setting).
inline constexpr size_t kLineitemRowsSf10 = 59'986'052;

struct LineitemDates {
  std::vector<int64_t> orderdate;    // days since epoch
  std::vector<int64_t> shipdate;
  std::vector<int64_t> commitdate;
  std::vector<int64_t> receiptdate;
};

/// Generates `rows` lineitem date tuples (deterministic in `seed`).
LineitemDates GenerateLineitemDates(size_t rows, uint64_t seed = 42);

/// Wraps the generated columns in a Table
/// (orderdate, shipdate, commitdate, receiptdate).
Result<Table> MakeLineitemTable(size_t rows, uint64_t seed = 42);

}  // namespace corra::datagen

#endif  // CORRA_DATAGEN_TPCH_H_
