#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

namespace corra::datagen {

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::min(static_cast<size_t>(it - cdf_.begin()), cdf_.size() - 1);
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  cdf_.resize(weights.size());
  double total = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    cdf_[i] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

size_t DiscreteDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::min(static_cast<size_t>(it - cdf_.begin()), cdf_.size() - 1);
}

double SampleLogNormal(Rng* rng, double mu, double sigma) {
  return std::exp(mu + sigma * rng->NextGaussian());
}

}  // namespace corra::datagen
