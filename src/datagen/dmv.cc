#include "datagen/dmv.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "datagen/distributions.h"

namespace corra::datagen {

namespace {

constexpr size_t kStateCount = 62;
constexpr size_t kFullScaleCityCount = 2500;
// "Cities have only a few dozen unique zip codes" (paper Sec. 1): capping
// at 63 keeps the hierarchical local index at 6 bits.
constexpr size_t kMaxZipsPerCity = 63;

// City cardinality scales linearly with the requested row count so that
// the rows-per-(city, zip)-pair repetition ratio — the quantity the
// hierarchical savings depend on — matches the full-scale dataset at any
// test scale. (Zips per city stay fixed: they set the local bit width.)
size_t ScaledCityCount(size_t rows) {
  const size_t scaled = kFullScaleCityCount * rows / kDmvRows;
  return std::clamp<size_t>(scaled, 50, kFullScaleCityCount);
}

// Two-letter state-like codes: "NY" first (dominant), then synthetic.
std::string StateName(size_t s) {
  if (s == 0) {
    return "NY";
  }
  std::string name(2, 'A');
  name[0] = static_cast<char>('A' + (s / 26) % 26);
  name[1] = static_cast<char>('A' + s % 26);
  return name;
}

// Pronounceable-ish synthetic city names, 6-14 chars.
std::string CityName(size_t c, Rng* rng) {
  static constexpr const char* kPrefixes[] = {
      "North", "South", "East", "West", "New", "Lake", "Mount", "Fort",
      "Port", "Glen"};
  static constexpr const char* kStems[] = {
      "field", "ville", "burg", "town", "wood", "haven", "ford", "dale",
      "port", "ridge", "brook", "mont"};
  std::string name;
  if (rng->Bernoulli(0.3)) {
    name += kPrefixes[rng->Uniform(0, 9)];
    name += ' ';
  }
  const size_t stem_len = static_cast<size_t>(rng->Uniform(3, 6));
  for (size_t i = 0; i < stem_len; ++i) {
    name += static_cast<char>(i == 0 ? 'A' + rng->Uniform(0, 25)
                                     : 'a' + rng->Uniform(0, 25));
  }
  name += kStems[rng->Uniform(0, 11)];
  name += std::to_string(c);  // Guarantees uniqueness.
  return name;
}

// The static geography shared by both generator variants.
struct Geography {
  std::vector<std::string> state_names;
  std::vector<std::string> city_names;
  std::vector<size_t> city_state;
  std::vector<int64_t> city_zip_base;
  std::vector<size_t> city_zip_count;
};

Geography BuildGeography(size_t rows, Rng* rng) {
  Geography geo;
  geo.state_names.resize(kStateCount);
  for (size_t s = 0; s < kStateCount; ++s) {
    geo.state_names[s] = StateName(s);
  }
  // NY holds most cities; out-of-state tail is thin.
  const size_t city_count = ScaledCityCount(rows);
  ZipfDistribution city_state_dist(kStateCount, 1.6);
  geo.city_names.resize(city_count);
  geo.city_state.resize(city_count);
  geo.city_zip_base.resize(city_count);
  geo.city_zip_count.resize(city_count);
  int64_t next_zip = 10001;  // 5-digit zips, NYC-style start.
  for (size_t c = 0; c < city_count; ++c) {
    geo.city_names[c] = CityName(c, rng);
    geo.city_state[c] = city_state_dist.Sample(rng);
    // Popular (low-rank) cities own more zips; rank correlates with c
    // because rows sample cities by Zipf rank below.
    const double popularity =
        1.0 / std::pow(static_cast<double>(c + 1), 0.35);
    size_t zips = static_cast<size_t>(
        1 + popularity * static_cast<double>(kMaxZipsPerCity - 1) *
                (0.5 + 0.5 * rng->NextDouble()));
    zips = std::min(zips, kMaxZipsPerCity);
    geo.city_zip_base[c] = next_zip;
    geo.city_zip_count[c] = zips;
    next_zip += static_cast<int64_t>(zips);
    if (next_zip > 99000) {
      next_zip = 10001 + (next_zip % 977);  // Wrap; reuse is harmless.
    }
  }
  return geo;
}

// One row draw: (city index, zip value).
struct RowDraw {
  size_t city;
  int64_t zip;
};

RowDraw DrawRow(const Geography& geo, const ZipfDistribution& city_dist,
                Rng* rng) {
  const size_t c = city_dist.Sample(rng);
  // Zips within a city are mildly skewed toward the first few.
  const size_t zi = static_cast<size_t>(
      static_cast<double>(geo.city_zip_count[c]) * rng->NextDouble() *
      rng->NextDouble());
  return {c, geo.city_zip_base[c] +
                 static_cast<int64_t>(
                     std::min(zi, geo.city_zip_count[c] - 1))};
}

}  // namespace

DmvData GenerateDmv(size_t rows, uint64_t seed) {
  Rng rng(seed);
  const Geography geo = BuildGeography(rows, &rng);
  ZipfDistribution city_dist(geo.city_names.size(), 1.05);
  DmvData out;
  out.state.reserve(rows);
  out.city.reserve(rows);
  out.zip.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const RowDraw draw = DrawRow(geo, city_dist, &rng);
    out.state.push_back(geo.state_names[geo.city_state[draw.city]]);
    out.city.push_back(geo.city_names[draw.city]);
    out.zip.push_back(draw.zip);
  }
  return out;
}

DmvCodes GenerateDmvCodes(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Geography geo = BuildGeography(rows, &rng);
  ZipfDistribution city_dist(geo.city_names.size(), 1.05);
  DmvCodes out;
  out.state.reserve(rows);
  out.city.reserve(rows);
  out.zip.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const RowDraw draw = DrawRow(geo, city_dist, &rng);
    out.state.push_back(
        static_cast<int64_t>(geo.city_state[draw.city]));
    out.city.push_back(static_cast<int64_t>(draw.city));
    out.zip.push_back(draw.zip);
  }
  out.state_names = std::move(geo.state_names);
  out.city_names = std::move(geo.city_names);
  return out;
}

Result<Table> MakeDmvTableFromCodes(size_t rows, uint64_t seed) {
  DmvCodes data = GenerateDmvCodes(rows, seed);
  auto state_dict = std::make_shared<enc::StringDictionary>();
  for (const std::string& s : data.state_names) {
    state_dict->GetOrInsert(s);
  }
  auto city_dict = std::make_shared<enc::StringDictionary>();
  for (const std::string& s : data.city_names) {
    city_dict->GetOrInsert(s);
  }
  Table table;
  CORRA_ASSIGN_OR_RETURN(
      Column state,
      Column::StringFromCodes("state", std::move(data.state), state_dict));
  CORRA_RETURN_NOT_OK(table.AddColumn(std::move(state)));
  CORRA_ASSIGN_OR_RETURN(
      Column city,
      Column::StringFromCodes("city", std::move(data.city), city_dict));
  CORRA_RETURN_NOT_OK(table.AddColumn(std::move(city)));
  CORRA_RETURN_NOT_OK(
      table.AddColumn(Column::Int64("zip_code", std::move(data.zip))));
  return table;
}

Result<Table> MakeDmvTable(size_t rows, uint64_t seed) {
  DmvData data = GenerateDmv(rows, seed);
  Table table;
  CORRA_RETURN_NOT_OK(table.AddColumn(Column::String("state", data.state)));
  CORRA_RETURN_NOT_OK(table.AddColumn(Column::String("city", data.city)));
  CORRA_RETURN_NOT_OK(
      table.AddColumn(Column::Int64("zip_code", std::move(data.zip))));
  return table;
}

}  // namespace corra::datagen
