#include "datagen/taxi.h"

#include <algorithm>
#include <cmath>

#include "common/date.h"
#include "common/random.h"
#include "datagen/distributions.h"

namespace corra::datagen {

namespace {

// One year of trips (2023), in seconds.
int64_t YearStartSeconds() {
  return ToDays(CivilDate{2023, 1, 1}) * 86400;
}
constexpr int64_t kYearSeconds = 365LL * 86400;

// Maximum glitch ride duration: ~12 days, just under 2^20 seconds. Real
// TLC exports contain meter glitches of this magnitude; they bound the
// diff bit width at 20 (paper: dropoff 136.64 -> 94.7 MB).
constexpr int64_t kMaxDurationSeconds = (1 << 20) - 1;

// A handful of corrupted timestamps dated years before the snapshot
// (e.g. meters reset to an old date). They survive the paper's cleaning
// and widen the vertical timestamp range to ~29 bits.
constexpr int64_t kCorruptOffsetSeconds = 500'000'000 - kYearSeconds;

}  // namespace

TaxiTrips GenerateTaxiTrips(size_t rows, uint64_t seed,
                            const TaxiFormulaProbabilities& probs) {
  Rng rng(seed);
  TaxiTrips out;
  auto reserve_all = [&](auto&... vecs) { (vecs.reserve(rows), ...); };
  reserve_all(out.pickup, out.dropoff, out.mta_tax, out.fare_amount,
              out.improvement_surcharge, out.extra, out.tip_amount,
              out.tolls_amount, out.congestion_surcharge, out.airport_fee,
              out.total_amount);

  DiscreteDistribution formula_dist(
      {probs.a, probs.a_b, probs.a_c, probs.a_b_c, probs.outlier});
  const int64_t year_start = YearStartSeconds();

  for (size_t i = 0; i < rows; ++i) {
    // --- Timestamps -----------------------------------------------------
    int64_t pickup = year_start + rng.Uniform(0, kYearSeconds - 1);
    if (rng.Bernoulli(2e-6)) {
      // Corrupted meter date, years in the past.
      pickup -= kCorruptOffsetSeconds;
    }
    // Log-normal duration, median ~660 s; rare glitch tail.
    int64_t duration = static_cast<int64_t>(
        SampleLogNormal(&rng, 6.5, 0.75));
    if (rng.Bernoulli(5e-5)) {
      duration = rng.Uniform(86'400, kMaxDurationSeconds);
    }
    duration = std::clamp<int64_t>(duration, 30, kMaxDurationSeconds);
    out.pickup.push_back(pickup);
    out.dropoff.push_back(pickup + duration);

    // --- Money (cents) --------------------------------------------------
    // Fare scales with duration; capped so every total stays below the
    // paper's $100 cleaning bound with headroom for tips and fees.
    const int64_t fare = std::clamp<int64_t>(
        250 + duration / 8 + rng.Uniform(-100, 300), 250, 5800);
    const int64_t mta_tax = 50;
    const int64_t improvement = 100;
    static constexpr int64_t kExtras[] = {0, 0, 50, 100, 250};
    const int64_t extra = kExtras[rng.Uniform(0, 4)];
    // ~70% of riders tip, 15-25% of the fare.
    const int64_t tip =
        rng.Bernoulli(0.7)
            ? fare * rng.Uniform(15, 25) / 100
            : 0;
    const int64_t tolls = rng.Bernoulli(0.06) ? 688 : 0;
    const int64_t group_a =
        mta_tax + fare + improvement + extra + tip + tolls;
    const int64_t group_b = 250;  // NYC congestion surcharge.
    const int64_t group_c = 175;  // Airport fee.

    const size_t formula = formula_dist.Sample(&rng);
    int64_t total = group_a;
    int64_t congestion = 0;
    int64_t airport = 0;
    switch (formula) {
      case 0:  // A
        break;
      case 1:  // A + B
        congestion = group_b;
        total += group_b;
        break;
      case 2:  // A + C
        airport = group_c;
        total += group_c;
        break;
      case 3:  // A + B + C
        congestion = group_b;
        airport = group_c;
        total += group_b + group_c;
        break;
      default: {  // Outlier: manual adjustment breaking every formula.
        congestion = group_b;
        int64_t perturbation = rng.Uniform(-400, 400);
        if (perturbation >= -250 && perturbation <= 425) {
          // Keep the perturbed total from accidentally matching A, A+B,
          // A+C or A+B+C (offsets -250/0/-75/+175 relative to A+B).
          perturbation = 426 + (perturbation & 63);
        }
        total += group_b + perturbation;
        break;
      }
    }
    out.mta_tax.push_back(mta_tax);
    out.fare_amount.push_back(fare);
    out.improvement_surcharge.push_back(improvement);
    out.extra.push_back(extra);
    out.tip_amount.push_back(tip);
    out.tolls_amount.push_back(tolls);
    out.congestion_surcharge.push_back(congestion);
    out.airport_fee.push_back(airport);
    out.total_amount.push_back(total);
  }
  return out;
}

Result<Table> MakeTaxiTable(size_t rows, uint64_t seed,
                            const TaxiFormulaProbabilities& probs) {
  TaxiTrips t = GenerateTaxiTrips(rows, seed, probs);
  Table table;
  CORRA_RETURN_NOT_OK(
      table.AddColumn(Column::Timestamp("pickup", std::move(t.pickup))));
  CORRA_RETURN_NOT_OK(
      table.AddColumn(Column::Timestamp("dropoff", std::move(t.dropoff))));
  CORRA_RETURN_NOT_OK(
      table.AddColumn(Column::Money("mta_tax", std::move(t.mta_tax))));
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Money("fare_amount", std::move(t.fare_amount))));
  CORRA_RETURN_NOT_OK(table.AddColumn(Column::Money(
      "improvement_surcharge", std::move(t.improvement_surcharge))));
  CORRA_RETURN_NOT_OK(
      table.AddColumn(Column::Money("extra", std::move(t.extra))));
  CORRA_RETURN_NOT_OK(
      table.AddColumn(Column::Money("tip_amount", std::move(t.tip_amount))));
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Money("tolls_amount", std::move(t.tolls_amount))));
  CORRA_RETURN_NOT_OK(table.AddColumn(Column::Money(
      "congestion_surcharge", std::move(t.congestion_surcharge))));
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Money("airport_fee", std::move(t.airport_fee))));
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Money("total_amount", std::move(t.total_amount))));
  return table;
}

}  // namespace corra::datagen
