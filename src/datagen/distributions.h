// Shared sampling distributions for the synthetic dataset generators.
//
// The real datasets (DMV registrations, LDBC SF30, NYC Taxi) are not
// redistributable here, so the generators in this directory synthesize
// data with the same correlation structure; Zipf skew drives realistic
// frequency distributions for cities, countries, and IPs.

#ifndef CORRA_DATAGEN_DISTRIBUTIONS_H_
#define CORRA_DATAGEN_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace corra::datagen {

/// Zipf-distributed sampler over ranks 0..n-1 with exponent `s`
/// (P(rank k) ~ 1/(k+1)^s). Samples by binary search over the CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  /// A rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Discrete sampler over explicit (unnormalized) weights.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  /// An index in [0, weights.size()).
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

/// Log-normal sample with the given log-space mean/stddev.
double SampleLogNormal(Rng* rng, double mu, double sigma);

}  // namespace corra::datagen

#endif  // CORRA_DATAGEN_DISTRIBUTIONS_H_
