#include "datagen/tpch.h"

#include "common/date.h"
#include "common/random.h"

namespace corra::datagen {

LineitemDates GenerateLineitemDates(size_t rows, uint64_t seed) {
  Rng rng(seed);
  LineitemDates out;
  out.orderdate.resize(rows);
  out.shipdate.resize(rows);
  out.commitdate.resize(rows);
  out.receiptdate.resize(rows);

  const int64_t start = ToDays(CivilDate{1992, 1, 1});
  const int64_t end = ToDays(CivilDate{1998, 12, 31});
  // dbgen: orders span [STARTDATE, ENDDATE - 151 days].
  const int64_t order_hi = end - 151;

  for (size_t i = 0; i < rows; ++i) {
    const int64_t orderdate = rng.Uniform(start, order_hi);
    const int64_t shipdate = orderdate + rng.Uniform(1, 121);
    const int64_t commitdate = orderdate + rng.Uniform(30, 90);
    const int64_t receiptdate = shipdate + rng.Uniform(1, 30);
    out.orderdate[i] = orderdate;
    out.shipdate[i] = shipdate;
    out.commitdate[i] = commitdate;
    out.receiptdate[i] = receiptdate;
  }
  return out;
}

Result<Table> MakeLineitemTable(size_t rows, uint64_t seed) {
  LineitemDates dates = GenerateLineitemDates(rows, seed);
  Table table;
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Date("l_orderdate", std::move(dates.orderdate))));
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Date("l_shipdate", std::move(dates.shipdate))));
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Date("l_commitdate", std::move(dates.commitdate))));
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Date("l_receiptdate", std::move(dates.receiptdate))));
  return table;
}

}  // namespace corra::datagen
