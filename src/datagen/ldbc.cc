#include "datagen/ldbc.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "datagen/distributions.h"

namespace corra::datagen {

namespace {

constexpr size_t kCountryCount = 111;
constexpr size_t kFullScaleMaxIpsPerCountry = 60'000;
constexpr size_t kMinIpsPerCountry = 50;

// IP-pool sizes scale linearly with the requested row count so that the
// messages-per-distinct-IP repetition ratio matches the full-scale SF 30
// dataset at any test scale (metadata amortization drives the savings).
size_t ScaledMaxIps(size_t rows) {
  const size_t scaled = kFullScaleMaxIpsPerCountry * rows / kMessageRowsSf30;
  return std::clamp<size_t>(scaled, 400, kFullScaleMaxIpsPerCountry);
}

}  // namespace

LdbcMessages GenerateLdbcMessages(size_t rows, uint64_t seed) {
  Rng rng(seed);

  // Per-country IP pools: pool size tracks country popularity so that the
  // per-country local-index bit width stays at ~16 (at full scale) while
  // the global distinct count reaches ~1M.
  const size_t max_ips = ScaledMaxIps(rows);
  std::vector<int64_t> pool_base(kCountryCount);
  std::vector<size_t> pool_size(kCountryCount);
  for (size_t c = 0; c < kCountryCount; ++c) {
    const double popularity =
        1.0 / std::pow(static_cast<double>(c + 1), 0.45);
    size_t size =
        static_cast<size_t>(static_cast<double>(max_ips) * popularity);
    size = std::clamp(size, std::min(kMinIpsPerCountry, max_ips), max_ips);
    pool_size[c] = size;
    // Country-disjoint IPv4 ranges spread across the whole 32-bit address
    // space: the ip column's value range then defeats FOR, so the
    // baseline selector picks dictionary encoding — exactly the paper's
    // stated baseline for this column ("baseline compression uses
    // dictionary encoding for the ip column", Sec. 3).
    pool_base[c] = static_cast<int64_t>(c) * 38'000'000 + 16'777'216;
  }

  ZipfDistribution country_dist(kCountryCount, 0.9);
  LdbcMessages out;
  out.countryid.reserve(rows);
  out.ip.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const size_t c = country_dist.Sample(&rng);
    // Square a uniform to skew toward the pool's head (popular IPs are
    // users posting frequently).
    const double u = rng.NextDouble();
    const size_t local = static_cast<size_t>(
        u * u * static_cast<double>(pool_size[c]));
    out.countryid.push_back(static_cast<int64_t>(c));
    out.ip.push_back(pool_base[c] + static_cast<int64_t>(std::min(
                                        local, pool_size[c] - 1)));
  }
  return out;
}

Result<Table> MakeLdbcTable(size_t rows, uint64_t seed) {
  LdbcMessages data = GenerateLdbcMessages(rows, seed);
  Table table;
  CORRA_RETURN_NOT_OK(table.AddColumn(
      Column::Int64("countryid", std::move(data.countryid))));
  CORRA_RETURN_NOT_OK(table.AddColumn(Column::Int64("ip", std::move(data.ip))));
  return table;
}

}  // namespace corra::datagen
