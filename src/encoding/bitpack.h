// Fixed-width bit-packing of non-negative values.
//
// The simplest member of the baseline pool: width = bits of the maximum
// value. FOR (for.h) generalizes this by subtracting a base first; BitPack
// is kept separate because the paper's Fig. 2 uses "just bit-packing the
// individual columns" as its reference point.

#ifndef CORRA_ENCODING_BITPACK_H_
#define CORRA_ENCODING_BITPACK_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "encoding/encoded_column.h"

namespace corra::enc {

class BitPackColumn final : public EncodedColumn {
 public:
  /// Packs `values`; fails with InvalidArgument if any value is negative.
  static Result<std::unique_ptr<BitPackColumn>> Encode(
      std::span<const int64_t> values);

  /// Compressed size `values` would have, without encoding them.
  /// Returns SIZE_MAX when the scheme is inapplicable (negative values).
  static size_t EstimateSizeBytes(std::span<const int64_t> values);

  static Result<std::unique_ptr<BitPackColumn>> Deserialize(
      BufferReader* reader);

  Scheme scheme() const override { return Scheme::kBitPack; }
  size_t size() const override { return reader_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override {
    return static_cast<int64_t>(reader_.Get(row));
  }
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  int bit_width() const { return reader_.bit_width(); }

 private:
  BitPackColumn(std::vector<uint8_t> bytes, int bit_width, size_t count);

  std::vector<uint8_t> bytes_;
  BitReader reader_;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_BITPACK_H_
