// Identifiers for every encoding scheme in the library: the vertical
// (single-column) substrate the paper uses as its baseline, the horizontal
// Corra schemes (the paper's contribution), and the C3 schemes from the
// independent work of Glas et al. used in Table 3.

#ifndef CORRA_ENCODING_SCHEME_H_
#define CORRA_ENCODING_SCHEME_H_

#include <cstdint>
#include <string_view>

namespace corra::enc {

/// Wire-stable identifiers (serialized as one byte in the block format).
enum class Scheme : uint8_t {
  // Vertical schemes (prior work; Corra's baseline pool).
  kPlain = 0,        // Raw 64-bit values.
  kBitPack = 1,      // Fixed-width packing of non-negative values.
  kFor = 2,          // Frame-of-reference + bit-packing.
  kDict = 3,         // Dictionary + bit-packed codes.
  kDelta = 4,        // Deltas to predecessor, checkpointed random access.
  kRle = 5,          // Run-length, checkpointed random access.

  // Horizontal schemes (Corra, this paper).
  kDiff = 16,          // Non-hierarchical diff encoding (Sec. 2.1).
  kHierarchical = 17,  // Hierarchical encoding (Sec. 2.2).
  kMultiRef = 18,      // Multiple reference columns + outliers (Sec. 2.3).

  // C3 schemes (Glas et al., reimplemented for Table 3).
  kC3Dfor = 32,       // Diff column compressed with FOR.
  kC3Numerical = 33,  // Affine generalization of diff encoding.
  kC3OneToOne = 34,   // Target derivable 1-to-1 from the reference.
};

/// Human-readable scheme name for reports and error messages.
std::string_view SchemeToString(Scheme scheme);

/// True for schemes that express a column in terms of other columns and
/// therefore need reference binding inside a block.
constexpr bool IsHorizontal(Scheme scheme) {
  return scheme == Scheme::kDiff || scheme == Scheme::kHierarchical ||
         scheme == Scheme::kMultiRef || scheme == Scheme::kC3Dfor ||
         scheme == Scheme::kC3Numerical || scheme == Scheme::kC3OneToOne;
}

/// True for horizontal schemes with exactly one reference column (all of
/// them except MultiRef). Together with scheme(), this lets query kernels
/// downcast to SingleRefColumn without RTTI.
constexpr bool IsSingleReference(Scheme scheme) {
  return scheme == Scheme::kDiff || scheme == Scheme::kHierarchical ||
         scheme == Scheme::kC3Dfor || scheme == Scheme::kC3Numerical ||
         scheme == Scheme::kC3OneToOne;
}

/// True for schemes whose Get() is O(1) without checkpoints. The paper's
/// baseline restricts itself to these (Sec. 3, "Baseline").
constexpr bool HasConstantTimeAccess(Scheme scheme) {
  return scheme != Scheme::kDelta && scheme != Scheme::kRle;
}

}  // namespace corra::enc

#endif  // CORRA_ENCODING_SCHEME_H_
