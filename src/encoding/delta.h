// Delta encoding with checkpoints.
//
// Each value is stored as the zig-zag difference to its predecessor;
// absolute values are checkpointed every kCheckpointInterval rows so random
// access costs at most one checkpoint plus a bounded scan. The paper
// excludes Delta from its baseline precisely because of this checkpoint
// cost — implementing it lets the scheme selector demonstrate that choice
// instead of asserting it.

#ifndef CORRA_ENCODING_DELTA_H_
#define CORRA_ENCODING_DELTA_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "encoding/encoded_column.h"

namespace corra::enc {

class DeltaColumn final : public EncodedColumn {
 public:
  /// Rows between consecutive absolute-value checkpoints.
  ///
  /// Space/speed trade-off: each checkpoint costs 8 bytes, so the
  /// overhead is 64 / kCheckpointInterval bits per row — at 128 that is
  /// 0.5 bits/row, negligible next to typical delta widths (2-16 bits).
  /// Random access replays at most kCheckpointInterval / 2 deltas (Get
  /// seeks from the nearest checkpoint in either direction), i.e. one
  /// ~64-value bulk unpack, which is a single SIMD kernel call. Halving
  /// the interval would only shave ~half of an already L1-resident
  /// unpack while doubling the metadata; doubling it pushes the replay
  /// past the 64-value kernel block and measurably slows point access.
  static constexpr size_t kCheckpointInterval = 128;

  static Result<std::unique_ptr<DeltaColumn>> Encode(
      std::span<const int64_t> values);

  /// Compressed size estimate (deltas + checkpoints).
  static size_t EstimateSizeBytes(std::span<const int64_t> values);

  static Result<std::unique_ptr<DeltaColumn>> Deserialize(
      BufferReader* reader);

  Scheme scheme() const override { return Scheme::kDelta; }
  size_t size() const override { return reader_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void Gather(std::span<const uint32_t> rows, int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  int bit_width() const { return reader_.bit_width(); }

 private:
  DeltaColumn(std::vector<int64_t> checkpoints, std::vector<uint8_t> bytes,
              int bit_width, size_t count);

  std::vector<int64_t> checkpoints_;  // Absolute value at row k*interval.
  std::vector<uint8_t> bytes_;        // Zig-zag deltas, bit-packed.
  BitReader reader_;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_DELTA_H_
