// Delta encoding with checkpoints.
//
// Each value is stored as the zig-zag difference to its predecessor;
// absolute values are checkpointed every `checkpoint_interval` rows so
// random access costs at most one checkpoint plus a bounded replay. The
// paper excludes Delta from its baseline precisely because of this
// checkpoint cost — implementing it lets the scheme selector demonstrate
// that choice instead of asserting it.
//
// Two physical layouts (see DeltaLayout):
//
//  * kPacked (default): one contiguous bit-packed delta stream plus an
//    out-of-band checkpoint array. Dense scans are one checkpoint seek
//    plus a single fused unpack+zigzag+prefix-sum kernel sweep over the
//    stream (simd::DeltaDecodePacked) — the layout analytic workloads
//    want.
//  * kInline: the absolute checkpoint value is interleaved *into* the
//    stream at the head of each interval's packed window (fixed window
//    stride, bit offsets realigned per window — see the layout contract
//    in common/simd/simd.h). Point access and sparse gathers touch one
//    contiguous window instead of checkpoint-array + stream — two
//    dependent cache lines become one — which is the whole remaining
//    fixed cost of kPacked point access. The price: dense decodes must
//    re-anchor once per interval, and the stride padding costs a little
//    space. Point-heavy serving workloads pick this layout through the
//    selector's WorkloadHint.
//
// Sparse decode: DecodeRange is one checkpoint seek plus fused
// unpack+zigzag+prefix-sum kernel calls (simd::DeltaDecodePacked); Get
// is one nearest-checkpoint fixed-trip masked fold (simd::
// DeltaPointPacked / simd::DeltaPointInline); GatherRange splits by
// selection density between fused window reconstruction and a batched
// running-cursor kernel (simd::DeltaGatherPacked / DeltaGatherInline).
// No path materializes a packed window or bottoms out in per-delta bit
// fetches.

#ifndef CORRA_ENCODING_DELTA_H_
#define CORRA_ENCODING_DELTA_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "common/simd/simd.h"
#include "encoding/encoded_column.h"

namespace corra::enc {

/// Physical layout of the checkpoint index (see file comment).
enum class DeltaLayout : uint8_t {
  /// Out-of-band checkpoint array + one contiguous packed stream.
  kPacked,
  /// Checkpoints interleaved at the head of each interval's window.
  kInline,
};

class DeltaColumn final : public EncodedColumn {
 public:
  /// Default rows between consecutive absolute-value checkpoints.
  ///
  /// Space/point-latency trade-off: each checkpoint costs 8 bytes, so
  /// the metadata overhead is 64 / interval bits per row, while point
  /// access replays at most interval / 2 deltas (Get seeks from the
  /// nearest checkpoint in either direction — expected replay is
  /// interval / 4, folded by the fixed-trip masked SIMD kernel). Both
  /// dimensions, measured at 1M rows of 13-bit deltas on the AVX2 dev
  /// box (random point accesses; total column size incl. checkpoints;
  /// kPacked layout):
  ///
  ///   interval   overhead      point access   column size
  ///        32    2.0  bit/row   ~16 ns/row    1.97 MB  <- default
  ///        64    1.0  bit/row   ~21 ns/row    1.84 MB
  ///       128    0.5  bit/row   ~38 ns/row    1.77 MB
  ///       256    0.25 bit/row   ~64 ns/row    1.74 MB
  ///      1024    0.06 bit/row  ~234 ns/row    1.71 MB
  ///
  /// 32 is the densified default: point latency is dominated by the
  /// fixed per-access cost (dispatch, two L2 lines, fold prologue) at an
  /// 8-delta expected replay, so a denser index would buy nothing,
  /// while each doubling of the interval adds the full marginal fold
  /// cost. The price is ~2 bits/row of metadata (+15% on a 13-bit-delta
  /// column) — columns that are only ever scanned (DecodeRange
  /// amortizes one seek per range) should pass a larger interval to
  /// Encode and reclaim that space.
  ///
  /// The kInline layout ladder (13-bit deltas, same box; stride is the
  /// fixed per-window byte count, one window per interval; point access
  /// quoted L2-resident at 64K rows / out-of-cache at 1M rows):
  ///
  ///   interval   stride   bytes/row   point access
  ///        16     40 B      2.50       ~9.9 / ~14.8 ns   <- inline default
  ///        32     64 B      2.00      ~12.5 / ~17   ns
  ///        64    112 B      1.75      ~17   / ~22   ns
  ///
  /// The inline default is 16: the whole point of the layout is
  /// single-window point latency, so it spends space on a denser index
  /// (the masked fold halves to a 2-iteration 8-slot half-window, and
  /// window + anchor stay well inside one cache line). For comparison,
  /// kPacked at its default interval measures ~15-17 ns point access at
  /// either row count — the out-of-band checkpoint array costs a second
  /// dependent cache line that the inline window folds away. Dense
  /// DecodeRange re-anchors once per interval (~1.2 vs ~0.5 ns/row),
  /// which is why the selector only picks kInline under
  /// WorkloadHint::kPointServing.
  static constexpr size_t kDefaultCheckpointInterval = 32;
  static constexpr size_t kDefaultInlineCheckpointInterval = 16;

  /// The default interval for `layout` — the one place the
  /// layout-to-default mapping lives, so encoders and size estimators
  /// can never disagree on it.
  static constexpr size_t DefaultIntervalFor(DeltaLayout layout) {
    return layout == DeltaLayout::kInline ? kDefaultInlineCheckpointInterval
                                          : kDefaultCheckpointInterval;
  }

  /// Bounds on configurable intervals. Intervals must be powers of two
  /// so the per-access checkpoint mapping stays a shift (a runtime
  /// division would cost more than the replay it locates), and at most
  /// one morsel so reconstruction windows stay L1-sized. The minimum
  /// dropped from 32 to 16 alongside the inline layout (both layouts
  /// accept it; the packed ladder simply never profits from 16).
  static constexpr size_t kMinCheckpointInterval = 16;
  static constexpr size_t kMaxCheckpointInterval = kMorselRows;

  /// Encodes `values` with a checkpoint every `checkpoint_interval` rows
  /// (see kDefaultCheckpointInterval for the trade-off) under the given
  /// physical layout. The interval must be a power of two in
  /// [kMinCheckpointInterval, kMaxCheckpointInterval].
  static Result<std::unique_ptr<DeltaColumn>> Encode(
      std::span<const int64_t> values,
      size_t checkpoint_interval = kDefaultCheckpointInterval,
      DeltaLayout layout = DeltaLayout::kPacked);

  /// Compressed size estimate (deltas + checkpoints; for kInline, the
  /// stride-padded window array).
  static size_t EstimateSizeBytes(
      std::span<const int64_t> values,
      size_t checkpoint_interval = kDefaultCheckpointInterval,
      DeltaLayout layout = DeltaLayout::kPacked);

  static Result<std::unique_ptr<DeltaColumn>> Deserialize(
      BufferReader* reader);

  Scheme scheme() const override { return Scheme::kDelta; }
  size_t size() const override { return count_; }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  int bit_width() const { return bit_width_; }
  size_t checkpoint_interval() const { return interval_; }
  DeltaLayout layout() const { return layout_; }

 private:
  DeltaColumn(std::vector<int64_t> checkpoints, std::vector<uint8_t> bytes,
              int bit_width, size_t count, size_t interval,
              DeltaLayout layout);

  // The logical value at `row`, replaying from the nearest checkpoint
  // with an aligned bulk unpack + SIMD zig-zag fold.
  int64_t SeekValue(size_t row) const;

  // Start of window k's delta-slot region (kInline only).
  const uint8_t* WindowDeltas(size_t k) const {
    return bytes_.data() + k * window_stride_ + 8;
  }
  // Inline checkpoint value at the head of window k (kInline only).
  int64_t InlineCheckpoint(size_t k) const;

  std::vector<int64_t> checkpoints_;  // kPacked: absolute value at row
                                      // k*interval. Empty for kInline.
  std::vector<uint8_t> bytes_;  // kPacked: zig-zag deltas, bit-packed.
                                // kInline: fixed-stride windows.
  int bit_width_ = 0;
  size_t count_ = 0;
  size_t interval_ = kDefaultCheckpointInterval;
  // log2(interval_): the per-access checkpoint mapping is a shift. There
  // is exactly one derivation — the constructor computes it from
  // `interval_` — so no construction path (legacy deserialization,
  // non-default Encode intervals, the inline layout) can ever pair an
  // interval with a stale shift and silently map rows to the wrong
  // checkpoint.
  int interval_shift_;
  DeltaLayout layout_ = DeltaLayout::kPacked;
  size_t window_stride_ = 0;  // Bytes per inline window (0 for kPacked).
  // Point-kernel pointers resolved once at construction: Get is the one
  // per-row hot path, so it skips the dispatch wrapper entirely. Only
  // the active layout's pointer is ever called.
  simd::DeltaPointFn point_kernel_ = nullptr;
  simd::DeltaPointInlineFn inline_point_kernel_ = nullptr;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_DELTA_H_
