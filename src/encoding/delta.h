// Delta encoding with checkpoints.
//
// Each value is stored as the zig-zag difference to its predecessor;
// absolute values are checkpointed every `checkpoint_interval` rows so
// random access costs at most one checkpoint plus a bounded replay. The
// paper excludes Delta from its baseline precisely because of this
// checkpoint cost — implementing it lets the scheme selector demonstrate
// that choice instead of asserting it.
//
// Sparse decode: DecodeRange is one checkpoint seek plus the fused
// unpack+zigzag+prefix-sum kernel (simd::DeltaDecodePacked); Get is one
// nearest-checkpoint fixed-trip masked fold (simd::DeltaPointPacked);
// GatherRange splits by selection density between fused window
// reconstruction and a batched running-cursor kernel
// (simd::DeltaGatherPacked). No path materializes a packed window or
// bottoms out in per-delta bit fetches.

#ifndef CORRA_ENCODING_DELTA_H_
#define CORRA_ENCODING_DELTA_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "common/simd/simd.h"
#include "encoding/encoded_column.h"

namespace corra::enc {

class DeltaColumn final : public EncodedColumn {
 public:
  /// Default rows between consecutive absolute-value checkpoints.
  ///
  /// Space/point-latency trade-off: each checkpoint costs 8 bytes, so
  /// the metadata overhead is 64 / interval bits per row, while point
  /// access replays at most interval / 2 deltas (Get seeks from the
  /// nearest checkpoint in either direction — expected replay is
  /// interval / 4, folded by the fixed-trip masked SIMD kernel). Both
  /// dimensions, measured at 1M rows of 13-bit deltas on the AVX2 dev
  /// box (random point accesses; total column size incl. checkpoints):
  ///
  ///   interval   overhead      point access   column size
  ///        32    2.0  bit/row   ~16 ns/row    1.97 MB  <- default
  ///        64    1.0  bit/row   ~21 ns/row    1.84 MB
  ///       128    0.5  bit/row   ~38 ns/row    1.77 MB
  ///       256    0.25 bit/row   ~64 ns/row    1.74 MB
  ///      1024    0.06 bit/row  ~234 ns/row    1.71 MB
  ///
  /// 32 is the densified default: point latency is dominated by the
  /// fixed per-access cost (dispatch, two L2 lines, fold prologue) at an
  /// 8-delta expected replay, so a denser index would buy nothing,
  /// while each doubling of the interval adds the full marginal fold
  /// cost. The price is ~2 bits/row of metadata (+15% on a 13-bit-delta
  /// column) — columns that are only ever scanned (DecodeRange
  /// amortizes one seek per range) should pass a larger interval to
  /// Encode and reclaim that space.
  static constexpr size_t kDefaultCheckpointInterval = 32;

  /// Bounds on configurable intervals. Intervals must be powers of two
  /// so the per-access checkpoint mapping stays a shift (a runtime
  /// division would cost more than the replay it locates), and at most
  /// one morsel so reconstruction windows stay L1-sized.
  static constexpr size_t kMinCheckpointInterval = 32;
  static constexpr size_t kMaxCheckpointInterval = kMorselRows;

  /// Encodes `values` with a checkpoint every `checkpoint_interval` rows
  /// (see kDefaultCheckpointInterval for the trade-off). The interval
  /// must be a power of two in [kMinCheckpointInterval,
  /// kMaxCheckpointInterval].
  static Result<std::unique_ptr<DeltaColumn>> Encode(
      std::span<const int64_t> values,
      size_t checkpoint_interval = kDefaultCheckpointInterval);

  /// Compressed size estimate (deltas + checkpoints).
  static size_t EstimateSizeBytes(
      std::span<const int64_t> values,
      size_t checkpoint_interval = kDefaultCheckpointInterval);

  static Result<std::unique_ptr<DeltaColumn>> Deserialize(
      BufferReader* reader);

  Scheme scheme() const override { return Scheme::kDelta; }
  size_t size() const override { return reader_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  int bit_width() const { return reader_.bit_width(); }
  size_t checkpoint_interval() const { return interval_; }

 private:
  DeltaColumn(std::vector<int64_t> checkpoints, std::vector<uint8_t> bytes,
              int bit_width, size_t count, size_t interval);

  // The logical value at `row`, replaying from the nearest checkpoint
  // with an aligned bulk unpack + SIMD zig-zag fold.
  int64_t SeekValue(size_t row) const;

  std::vector<int64_t> checkpoints_;  // Absolute value at row k*interval.
  std::vector<uint8_t> bytes_;        // Zig-zag deltas, bit-packed.
  BitReader reader_;
  size_t interval_ = kDefaultCheckpointInterval;
  int interval_shift_ = 5;  // log2(interval_): checkpoint mapping by shift.
  // Point-kernel pointer resolved once at construction: Get is the one
  // per-row hot path, so it skips the dispatch wrapper entirely.
  simd::DeltaPointFn point_kernel_ = nullptr;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_DELTA_H_
