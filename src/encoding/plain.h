// Plain (uncompressed) column: raw 64-bit values.
//
// Used for the "uncompressed" bars in the paper's Figures 6 and 7 and as
// the selector's fallback when no scheme compresses.

#ifndef CORRA_ENCODING_PLAIN_H_
#define CORRA_ENCODING_PLAIN_H_

#include <memory>
#include <span>
#include <vector>

#include "encoding/encoded_column.h"

namespace corra::enc {

class PlainColumn final : public EncodedColumn {
 public:
  /// Stores a copy of `values` verbatim.
  static std::unique_ptr<PlainColumn> Encode(std::span<const int64_t> values);

  /// Reads back a column written by Serialize (scheme byte consumed).
  static Result<std::unique_ptr<PlainColumn>> Deserialize(
      BufferReader* reader);

  Scheme scheme() const override { return Scheme::kPlain; }
  size_t size() const override { return values_.size(); }
  size_t SizeBytes() const override {
    return values_.size() * sizeof(int64_t);
  }
  int64_t Get(size_t row) const override { return values_[row]; }
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  /// Direct view of the stored values (used by scans on the
  /// "uncompressed" configuration).
  std::span<const int64_t> values() const { return values_; }

 private:
  explicit PlainColumn(std::vector<int64_t> values)
      : values_(std::move(values)) {}

  std::vector<int64_t> values_;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_PLAIN_H_
