#include "encoding/delta.h"

#include <algorithm>

#include "common/bit_util.h"

namespace corra::enc {

DeltaColumn::DeltaColumn(std::vector<int64_t> checkpoints,
                         std::vector<uint8_t> bytes, int bit_width,
                         size_t count)
    : checkpoints_(std::move(checkpoints)),
      bytes_(std::move(bytes)),
      reader_(bytes_.data(), bit_width, count) {}

Result<std::unique_ptr<DeltaColumn>> DeltaColumn::Encode(
    std::span<const int64_t> values) {
  // First pass: width of the widest zig-zag delta.
  uint64_t max_zz = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    // Wrap-around subtraction is well defined in unsigned space and is
    // inverted exactly by the wrap-around addition in Get/DecodeAll.
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1]));
    max_zz = std::max(max_zz, bit_util::ZigZagEncode(delta));
  }
  const int width = bit_util::BitWidth(max_zz);

  std::vector<int64_t> checkpoints;
  checkpoints.reserve(values.size() / kCheckpointInterval + 1);
  BitWriter writer(width);
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % kCheckpointInterval == 0) {
      checkpoints.push_back(values[i]);
    }
    const int64_t prev = i == 0 ? 0 : values[i - 1];
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(prev));
    // Row 0's delta slot is unused (the checkpoint covers it); store 0 to
    // keep positions aligned.
    writer.Append(i == 0 ? 0 : bit_util::ZigZagEncode(delta));
  }
  return std::unique_ptr<DeltaColumn>(
      new DeltaColumn(std::move(checkpoints), std::move(writer).Finish(),
                      width, values.size()));
}

size_t DeltaColumn::EstimateSizeBytes(std::span<const int64_t> values) {
  uint64_t max_zz = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1]));
    max_zz = std::max(max_zz, bit_util::ZigZagEncode(delta));
  }
  const int width = bit_util::BitWidth(max_zz);
  const size_t checkpoints =
      values.empty() ? 0 : (values.size() - 1) / kCheckpointInterval + 1;
  return bit_util::CeilDiv(values.size() * width, 8) +
         checkpoints * sizeof(int64_t);
}

Result<std::unique_ptr<DeltaColumn>> DeltaColumn::Deserialize(
    BufferReader* reader) {
  std::vector<int64_t> checkpoints;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&checkpoints));
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("Delta width > 64");
  }
  const size_t expected_checkpoints =
      count == 0 ? 0 : (count - 1) / kCheckpointInterval + 1;
  if (checkpoints.size() != expected_checkpoints) {
    return Status::Corruption("Delta checkpoint count mismatch");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("Delta payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<DeltaColumn>(new DeltaColumn(
      std::move(checkpoints), std::move(bytes), width, count));
}

size_t DeltaColumn::SizeBytes() const {
  return bit_util::CeilDiv(reader_.size() * reader_.bit_width(), 8) +
         checkpoints_.size() * sizeof(int64_t);
}

int64_t DeltaColumn::Get(size_t row) const {
  // Seek from the *nearest* checkpoint, not just the one below: a prefix
  // of deltas after the covering checkpoint sums forward to the value,
  // and a suffix of deltas up to the *next* checkpoint sums backward
  // (value = next_checkpoint - sum). Picking the closer side halves the
  // expected replay from kCheckpointInterval / 2 to kCheckpointInterval
  // / 4 deltas, and the replay itself is one bulk unpack (SIMD kernel
  // layer) plus a zig-zag fold instead of a per-delta bit fetch.
  const size_t checkpoint = row / kCheckpointInterval;
  const size_t checkpoint_row = checkpoint * kCheckpointInterval;
  const size_t next_row = checkpoint_row + kCheckpointInterval;
  const size_t forward = row - checkpoint_row;

  uint64_t deltas[kCheckpointInterval];
  uint64_t sum = 0;
  if (forward <= kCheckpointInterval / 2 || next_row >= reader_.size()) {
    // Forward: checkpoint + deltas (checkpoint_row, row].
    reader_.DecodeRange(checkpoint_row + 1, forward, deltas);
    for (size_t i = 0; i < forward; ++i) {
      sum += static_cast<uint64_t>(bit_util::ZigZagDecode(deltas[i]));
    }
    return static_cast<int64_t>(
        static_cast<uint64_t>(checkpoints_[checkpoint]) + sum);
  }
  // Backward: next checkpoint - deltas (row, next_row].
  const size_t backward = next_row - row;
  reader_.DecodeRange(row + 1, backward, deltas);
  for (size_t i = 0; i < backward; ++i) {
    sum += static_cast<uint64_t>(bit_util::ZigZagDecode(deltas[i]));
  }
  return static_cast<int64_t>(
      static_cast<uint64_t>(checkpoints_[checkpoint + 1]) - sum);
}

void DeltaColumn::Gather(std::span<const uint32_t> rows,
                         int64_t* out) const {
  // Checkpoint-seek-then-run over the sorted positions: keep the running
  // value from the previous position and only re-seek to a checkpoint
  // when it is closer than the current decode cursor. Dense-ish sorted
  // selections decode each delta at most once instead of re-scanning
  // from a checkpoint per row (what the base-class Get loop would do).
  int64_t value = 0;
  size_t pos = 0;     // Row the running value corresponds to.
  bool primed = false;
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t row = rows[i];
    const size_t checkpoint_row =
        row / kCheckpointInterval * kCheckpointInterval;
    if (!primed || checkpoint_row > pos || row < pos) {
      value = checkpoints_[row / kCheckpointInterval];
      pos = checkpoint_row;
      primed = true;
    }
    for (; pos < row; ) {
      ++pos;
      value = static_cast<int64_t>(
          static_cast<uint64_t>(value) +
          static_cast<uint64_t>(bit_util::ZigZagDecode(reader_.Get(pos))));
    }
    out[i] = value;
  }
}

void DeltaColumn::DecodeAll(int64_t* out) const {
  DecodeRange(0, reader_.size(), out);
}

void DeltaColumn::DecodeRange(size_t row_begin, size_t count,
                              int64_t* out) const {
  if (count == 0) {
    return;
  }
  // Seek to the covering checkpoint, then run forward; rows before
  // `row_begin` are decoded (at most kCheckpointInterval - 1 of them)
  // but not emitted. Later checkpoints inside the range re-anchor the
  // running value, which keeps the loop correct across checkpoint-
  // straddling morsels.
  const size_t end = row_begin + count;
  size_t i = row_begin / kCheckpointInterval * kCheckpointInterval;
  int64_t value = checkpoints_[i / kCheckpointInterval];
  for (;; ++i) {
    if (i % kCheckpointInterval == 0) {
      value = checkpoints_[i / kCheckpointInterval];
    } else {
      value = static_cast<int64_t>(
          static_cast<uint64_t>(value) +
          static_cast<uint64_t>(bit_util::ZigZagDecode(reader_.Get(i))));
    }
    if (i >= row_begin) {
      out[i - row_begin] = value;
    }
    if (i + 1 >= end) {
      break;
    }
  }
}

void DeltaColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kDelta));
  writer->WriteInt64Array(checkpoints_);
  writer->Write<uint8_t>(static_cast<uint8_t>(reader_.bit_width()));
  writer->Write<uint64_t>(reader_.size());
  writer->WriteBytes(bytes_);
}

}  // namespace corra::enc
