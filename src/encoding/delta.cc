#include "encoding/delta.h"

#include <algorithm>
#include <bit>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::enc {

namespace {

// Extended-format marker for the serialized layout: the legacy layout
// starts with the checkpoint array's uint64 length prefix, which can
// never be UINT64_MAX, so the marker unambiguously announces that a
// checkpoint interval field follows. Columns whose interval matches the
// legacy constant keep writing the legacy layout byte-for-byte (and
// stay readable by older readers); every legacy file was written with
// that constant, so the sniffing reader maps the legacy layout to it.
constexpr uint64_t kIntervalMarker = ~uint64_t{0};
constexpr size_t kLegacySerializedInterval = 128;

bool ValidInterval(size_t interval) {
  return interval >= DeltaColumn::kMinCheckpointInterval &&
         interval <= DeltaColumn::kMaxCheckpointInterval &&
         (interval & (interval - 1)) == 0;
}

}  // namespace

DeltaColumn::DeltaColumn(std::vector<int64_t> checkpoints,
                         std::vector<uint8_t> bytes, int bit_width,
                         size_t count, size_t interval)
    : checkpoints_(std::move(checkpoints)),
      bytes_(std::move(bytes)),
      reader_(bytes_.data(), bit_width, count),
      interval_(interval),
      interval_shift_(std::countr_zero(interval)),
      point_kernel_(simd::ResolveDeltaPointKernel()) {}

Result<std::unique_ptr<DeltaColumn>> DeltaColumn::Encode(
    std::span<const int64_t> values, size_t checkpoint_interval) {
  if (!ValidInterval(checkpoint_interval)) {
    return Status::InvalidArgument(
        "Delta checkpoint interval must be a power of two in [32, 2048]");
  }
  // First pass: width of the widest zig-zag delta.
  uint64_t max_zz = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    // Wrap-around subtraction is well defined in unsigned space and is
    // inverted exactly by the wrap-around addition in Get/DecodeAll.
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1]));
    max_zz = std::max(max_zz, bit_util::ZigZagEncode(delta));
  }
  const int width = bit_util::BitWidth(max_zz);

  std::vector<int64_t> checkpoints;
  checkpoints.reserve(values.size() / checkpoint_interval + 1);
  BitWriter writer(width);
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % checkpoint_interval == 0) {
      checkpoints.push_back(values[i]);
    }
    const int64_t prev = i == 0 ? 0 : values[i - 1];
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(prev));
    // Row 0's delta slot is unused (the checkpoint covers it); store 0 to
    // keep positions aligned.
    writer.Append(i == 0 ? 0 : bit_util::ZigZagEncode(delta));
  }
  return std::unique_ptr<DeltaColumn>(
      new DeltaColumn(std::move(checkpoints), std::move(writer).Finish(),
                      width, values.size(), checkpoint_interval));
}

size_t DeltaColumn::EstimateSizeBytes(std::span<const int64_t> values,
                                      size_t checkpoint_interval) {
  uint64_t max_zz = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1]));
    max_zz = std::max(max_zz, bit_util::ZigZagEncode(delta));
  }
  const int width = bit_util::BitWidth(max_zz);
  const size_t checkpoints =
      values.empty() ? 0 : (values.size() - 1) / checkpoint_interval + 1;
  return bit_util::CeilDiv(values.size() * width, 8) +
         checkpoints * sizeof(int64_t);
}

Result<std::unique_ptr<DeltaColumn>> DeltaColumn::Deserialize(
    BufferReader* reader) {
  // Format sniff: the legacy layout begins with the checkpoint array's
  // length prefix; the extended layout begins with kIntervalMarker
  // followed by the interval. Legacy columns always used the default.
  uint64_t first = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&first));
  size_t interval = kLegacySerializedInterval;
  std::vector<int64_t> checkpoints;
  if (first == kIntervalMarker) {
    uint64_t stored_interval = 0;
    CORRA_RETURN_NOT_OK(reader->Read(&stored_interval));
    if (stored_interval > kMaxCheckpointInterval ||
        !ValidInterval(static_cast<size_t>(stored_interval))) {
      return Status::Corruption("Delta checkpoint interval invalid");
    }
    interval = static_cast<size_t>(stored_interval);
    CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&checkpoints));
  } else {
    CORRA_RETURN_NOT_OK(
        reader->ReadInt64Values(static_cast<size_t>(first), &checkpoints));
  }
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("Delta width > 64");
  }
  const size_t expected_checkpoints =
      count == 0 ? 0 : (count - 1) / interval + 1;
  if (checkpoints.size() != expected_checkpoints) {
    return Status::Corruption("Delta checkpoint count mismatch");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("Delta payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<DeltaColumn>(new DeltaColumn(
      std::move(checkpoints), std::move(bytes), width, count, interval));
}

size_t DeltaColumn::SizeBytes() const {
  return bit_util::CeilDiv(reader_.size() * reader_.bit_width(), 8) +
         checkpoints_.size() * sizeof(int64_t);
}

int64_t DeltaColumn::SeekValue(size_t row) const {
  // One fused kernel call: seek from the *nearest* checkpoint (forward
  // from the covering one or backward from the next), with the replay
  // folded straight out of the packed stream. Expected replay is
  // interval / 4 deltas; see simd::DeltaPointPacked.
  return point_kernel_(bytes_.data(), reader_.bit_width(),
                       checkpoints_.data(), interval_shift_, reader_.size(),
                       row);
}

int64_t DeltaColumn::Get(size_t row) const { return SeekValue(row); }

void DeltaColumn::GatherRange(std::span<const uint32_t> rows,
                              int64_t* out) const {
  const size_t n = rows.size();
  if (n == 0) {
    return;
  }
  // Two checkpoint-indexed strategies, picked by selection density
  // (measured crossover at an average gap of ~24 deltas, see the bench):
  //
  //  * sparse: one batched kernel call walks the selection with a
  //    running cursor, folding each gap straight out of the packed
  //    stream and re-anchoring through the nearest checkpoint. Work per
  //    row is bounded by the gap (<= interval/2), but the
  //    variable-length folds cost a branch mispredict or two per row.
  //  * dense: reconstruct each covering window (anchored at its
  //    checkpoint, at most one morsel long) with the fused branch-free
  //    unpack+zigzag+prefix-sum kernel, then pick the selected values.
  //    Work per row is (gap+1) * ~0.5ns but entirely predictable.
  //
  // An unsorted selection (detected by span) takes the sparse path,
  // which tolerates out-of-order positions by re-anchoring.
  constexpr size_t kDenseGatherMaxGap = 24;
  const size_t span = rows[n - 1] >= rows[0] ? rows[n - 1] - rows[0] + 1 : 0;
  if (span == 0 || span > n * kDenseGatherMaxGap) {
    simd::DeltaGatherPacked(bytes_.data(), reader_.bit_width(),
                            checkpoints_.data(), interval_shift_,
                            reader_.size(), rows.data(), n, out);
    return;
  }
  int64_t values[kMorselRows + 1];
  size_t i = 0;
  while (i < n) {
    const size_t k = rows[i] >> interval_shift_;
    const size_t anchor = k << interval_shift_;
    const size_t window_end = std::min(anchor + kMorselRows, reader_.size());
    size_t j = i;
    size_t last_row = rows[i];
    while (j < n && rows[j] >= last_row && rows[j] < window_end) {
      last_row = rows[j];
      ++j;
    }
    // values[v] is the reconstructed value at row anchor + v; slot 0 is
    // the checkpoint itself, so the pick loop is branch-free.
    values[0] = checkpoints_[k];
    simd::DeltaDecodePacked(bytes_.data(), reader_.bit_width(), anchor + 1,
                            last_row - anchor, checkpoints_[k], values + 1);
    for (; i < j; ++i) {
      out[i] = values[rows[i] - anchor];
    }
  }
}

void DeltaColumn::DecodeAll(int64_t* out) const {
  DecodeRange(0, reader_.size(), out);
}

void DeltaColumn::DecodeRange(size_t row_begin, size_t count,
                              int64_t* out) const {
  if (count == 0) {
    return;
  }
  // One checkpoint seek for the first value, then the rest of the range
  // is a single fused unpack + zig-zag + prefix-sum kernel call over the
  // packed stream. No re-anchoring is needed inside the range: the
  // wrap-around prefix sum reproduces every checkpoint value exactly.
  out[0] = SeekValue(row_begin);
  simd::DeltaDecodePacked(bytes_.data(), reader_.bit_width(), row_begin + 1,
                          count - 1, out[0], out + 1);
}

void DeltaColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kDelta));
  if (interval_ != kLegacySerializedInterval) {
    writer->Write<uint64_t>(kIntervalMarker);
    writer->Write<uint64_t>(interval_);
  }
  writer->WriteInt64Array(checkpoints_);
  writer->Write<uint8_t>(static_cast<uint8_t>(reader_.bit_width()));
  writer->Write<uint64_t>(reader_.size());
  writer->WriteBytes(bytes_);
}

}  // namespace corra::enc
