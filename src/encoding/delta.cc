#include "encoding/delta.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::enc {

namespace {

// Extended-format markers for the serialized layout: the legacy layout
// starts with the checkpoint array's uint64 length prefix, which can
// never be anywhere near UINT64_MAX, so the markers unambiguously
// announce what follows. kIntervalMarker: a checkpoint interval field,
// then the legacy out-of-band body (PR 4 extension). kInlineMarker: an
// interval field, then the inline-checkpoint window stream (no
// out-of-band checkpoint array at all). Columns whose interval matches
// the legacy constant and use the packed layout keep writing the legacy
// layout byte-for-byte (and stay readable by older readers); every
// legacy file was written with that constant, so the sniffing reader
// maps the legacy layout to it.
constexpr uint64_t kIntervalMarker = ~uint64_t{0};
constexpr uint64_t kInlineMarker = ~uint64_t{0} - 1;
constexpr size_t kLegacySerializedInterval = 128;

bool ValidInterval(size_t interval) {
  return interval >= DeltaColumn::kMinCheckpointInterval &&
         interval <= DeltaColumn::kMaxCheckpointInterval &&
         (interval & (interval - 1)) == 0;
}

// Bytes per inline-layout window: the 8-byte checkpoint plus the
// interval's delta slots, rounded up to a multiple of 8 so every
// window's checkpoint load stays 8-byte aligned relative to the stream
// base (see the layout contract in common/simd/simd.h).
size_t WindowStrideBytes(size_t interval, int bit_width) {
  return 8 + bit_util::RoundUpPow2(
                 bit_util::CeilDiv(
                     interval * static_cast<size_t>(bit_width), 8),
                 8);
}

size_t NumWindows(size_t count, size_t interval) {
  return count == 0 ? 0 : (count - 1) / interval + 1;
}

// Width of the widest zig-zag delta between consecutive values.
int MaxDeltaBitWidth(std::span<const int64_t> values) {
  uint64_t max_zz = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    // Wrap-around subtraction is well defined in unsigned space and is
    // inverted exactly by the wrap-around addition in Get/DecodeAll.
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(values[i - 1]));
    max_zz = std::max(max_zz, bit_util::ZigZagEncode(delta));
  }
  return bit_util::BitWidth(max_zz);
}

// Builds the inline window stream for `values` (see WindowStrideBytes).
// Slot j of window k holds the zig-zag delta of row k*interval + 1 + j;
// unused slots of the (possibly partial) last window stay zero, and the
// buffer carries kDecodePadBytes of decode slack.
std::vector<uint8_t> BuildInlineWindows(std::span<const int64_t> values,
                                        size_t interval, int width) {
  const size_t n = values.size();
  const size_t windows = NumWindows(n, interval);
  const size_t stride = WindowStrideBytes(interval, width);
  std::vector<uint8_t> bytes(windows * stride + bit_util::kDecodePadBytes, 0);
  // OR-composed 8-byte read-modify-writes: a slot's word write may cover
  // bytes of the following checkpoint, but it writes those bytes back
  // unchanged, so window order does not matter.
  const auto put_bits = [width](uint8_t* base, size_t bit_pos, uint64_t v) {
    const size_t byte = bit_pos >> 3;
    const int shift = static_cast<int>(bit_pos & 7);
    uint64_t word;
    std::memcpy(&word, base + byte, sizeof(word));
    word |= v << shift;
    std::memcpy(base + byte, &word, sizeof(word));
    if (shift + width > 64) {
      base[byte + 8] = static_cast<uint8_t>(base[byte + 8] |
                                            (v >> (64 - shift)));
    }
  };
  const size_t w = static_cast<size_t>(width);
  for (size_t k = 0; k < windows; ++k) {
    const size_t first = k * interval;
    uint8_t* window = bytes.data() + k * stride;
    std::memcpy(window, &values[first], sizeof(int64_t));
    if (width == 0) {
      continue;
    }
    const size_t last = std::min(first + interval, n - 1);
    for (size_t row = first + 1; row <= last; ++row) {
      const int64_t delta = static_cast<int64_t>(
          static_cast<uint64_t>(values[row]) -
          static_cast<uint64_t>(values[row - 1]));
      put_bits(window + 8, (row - first - 1) * w,
               bit_util::ZigZagEncode(delta));
    }
  }
  return bytes;
}

}  // namespace

DeltaColumn::DeltaColumn(std::vector<int64_t> checkpoints,
                         std::vector<uint8_t> bytes, int bit_width,
                         size_t count, size_t interval, DeltaLayout layout)
    : checkpoints_(std::move(checkpoints)),
      bytes_(std::move(bytes)),
      bit_width_(bit_width),
      count_(count),
      interval_(interval),
      // The one and only shift derivation: every construction path
      // (Encode at any interval, legacy and extended deserialization,
      // both layouts) funnels through here, so interval_ and
      // interval_shift_ can never disagree.
      interval_shift_(std::countr_zero(interval)),
      layout_(layout),
      window_stride_(layout == DeltaLayout::kInline
                         ? WindowStrideBytes(interval, bit_width)
                         : 0),
      point_kernel_(layout == DeltaLayout::kPacked
                        ? simd::ResolveDeltaPointKernel()
                        : nullptr),
      inline_point_kernel_(layout == DeltaLayout::kInline
                               ? simd::ResolveDeltaPointInlineKernel()
                               : nullptr) {
  assert(ValidInterval(interval));
}

Result<std::unique_ptr<DeltaColumn>> DeltaColumn::Encode(
    std::span<const int64_t> values, size_t checkpoint_interval,
    DeltaLayout layout) {
  if (!ValidInterval(checkpoint_interval)) {
    return Status::InvalidArgument(
        "Delta checkpoint interval must be a power of two in [16, 2048]");
  }
  const int width = MaxDeltaBitWidth(values);

  if (layout == DeltaLayout::kInline) {
    return std::unique_ptr<DeltaColumn>(new DeltaColumn(
        {}, BuildInlineWindows(values, checkpoint_interval, width), width,
        values.size(), checkpoint_interval, layout));
  }

  std::vector<int64_t> checkpoints;
  checkpoints.reserve(values.size() / checkpoint_interval + 1);
  BitWriter writer(width);
  for (size_t i = 0; i < values.size(); ++i) {
    if (i % checkpoint_interval == 0) {
      checkpoints.push_back(values[i]);
    }
    const int64_t prev = i == 0 ? 0 : values[i - 1];
    const int64_t delta = static_cast<int64_t>(
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(prev));
    // Row 0's delta slot is unused (the checkpoint covers it); store 0 to
    // keep positions aligned.
    writer.Append(i == 0 ? 0 : bit_util::ZigZagEncode(delta));
  }
  return std::unique_ptr<DeltaColumn>(
      new DeltaColumn(std::move(checkpoints), std::move(writer).Finish(),
                      width, values.size(), checkpoint_interval, layout));
}

size_t DeltaColumn::EstimateSizeBytes(std::span<const int64_t> values,
                                      size_t checkpoint_interval,
                                      DeltaLayout layout) {
  const int width = MaxDeltaBitWidth(values);
  if (layout == DeltaLayout::kInline) {
    return NumWindows(values.size(), checkpoint_interval) *
           WindowStrideBytes(checkpoint_interval, width);
  }
  const size_t checkpoints =
      values.empty() ? 0 : (values.size() - 1) / checkpoint_interval + 1;
  return bit_util::CeilDiv(values.size() * width, 8) +
         checkpoints * sizeof(int64_t);
}

Result<std::unique_ptr<DeltaColumn>> DeltaColumn::Deserialize(
    BufferReader* reader) {
  // Format sniff: the legacy layout begins with the checkpoint array's
  // length prefix; the extended layouts begin with a marker (see the
  // marker constants). Legacy columns always used the default interval.
  uint64_t first = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&first));

  if (first == kInlineMarker) {
    uint64_t stored_interval = 0;
    CORRA_RETURN_NOT_OK(reader->Read(&stored_interval));
    if (stored_interval > kMaxCheckpointInterval ||
        !ValidInterval(static_cast<size_t>(stored_interval))) {
      return Status::Corruption("Delta checkpoint interval invalid");
    }
    const size_t interval = static_cast<size_t>(stored_interval);
    uint8_t width = 0;
    uint64_t count = 0;
    CORRA_RETURN_NOT_OK(reader->Read(&width));
    CORRA_RETURN_NOT_OK(reader->Read(&count));
    if (width > 64) {
      return Status::Corruption("Delta width > 64");
    }
    const size_t windows = NumWindows(count, interval);
    const size_t stride = WindowStrideBytes(interval, width);
    std::span<const uint8_t> payload;
    CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
    // Division, not `payload.size() < windows * stride`: a corrupt
    // `count` near 2^64 makes the product wrap to a small value and
    // sail past the check, building a column whose row count vastly
    // exceeds its buffer (out-of-bounds reads on first access).
    if (windows > payload.size() / stride) {
      return Status::Corruption("Delta inline window stream truncated");
    }
    std::vector<uint8_t> bytes(payload.begin(),
                               payload.begin() + windows * stride);
    bytes.resize(windows * stride + bit_util::kDecodePadBytes, 0);
    return std::unique_ptr<DeltaColumn>(
        new DeltaColumn({}, std::move(bytes), width, count, interval,
                        DeltaLayout::kInline));
  }

  size_t interval = kLegacySerializedInterval;
  std::vector<int64_t> checkpoints;
  if (first == kIntervalMarker) {
    uint64_t stored_interval = 0;
    CORRA_RETURN_NOT_OK(reader->Read(&stored_interval));
    if (stored_interval > kMaxCheckpointInterval ||
        !ValidInterval(static_cast<size_t>(stored_interval))) {
      return Status::Corruption("Delta checkpoint interval invalid");
    }
    interval = static_cast<size_t>(stored_interval);
    CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&checkpoints));
  } else {
    CORRA_RETURN_NOT_OK(
        reader->ReadInt64Values(static_cast<size_t>(first), &checkpoints));
  }
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("Delta width > 64");
  }
  const size_t expected_checkpoints =
      count == 0 ? 0 : (count - 1) / interval + 1;
  if (checkpoints.size() != expected_checkpoints) {
    return Status::Corruption("Delta checkpoint count mismatch");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("Delta payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<DeltaColumn>(
      new DeltaColumn(std::move(checkpoints), std::move(bytes), width, count,
                      interval, DeltaLayout::kPacked));
}

size_t DeltaColumn::SizeBytes() const {
  if (layout_ == DeltaLayout::kInline) {
    return NumWindows(count_, interval_) * window_stride_;
  }
  return bit_util::CeilDiv(count_ * static_cast<size_t>(bit_width_), 8) +
         checkpoints_.size() * sizeof(int64_t);
}

int64_t DeltaColumn::InlineCheckpoint(size_t k) const {
  int64_t value;
  std::memcpy(&value, bytes_.data() + k * window_stride_, sizeof(value));
  return value;
}

int64_t DeltaColumn::SeekValue(size_t row) const {
  // One fused kernel call: seek from the *nearest* checkpoint (forward
  // from the covering one or backward from the next), with the replay
  // folded straight out of the packed stream. Expected replay is
  // interval / 4 deltas; see simd::DeltaPointPacked /
  // simd::DeltaPointInline.
  if (layout_ == DeltaLayout::kInline) {
    return inline_point_kernel_(bytes_.data(), bit_width_, interval_shift_,
                                window_stride_, count_, row);
  }
  return point_kernel_(bytes_.data(), bit_width_, checkpoints_.data(),
                       interval_shift_, count_, row);
}

int64_t DeltaColumn::Get(size_t row) const { return SeekValue(row); }

void DeltaColumn::GatherRange(std::span<const uint32_t> rows,
                              int64_t* out) const {
  const size_t n = rows.size();
  if (n == 0) {
    return;
  }
  // Two checkpoint-indexed strategies, picked by selection density
  // (measured crossover at an average gap of ~24 deltas, see the bench):
  //
  //  * sparse: one batched kernel call walks the selection with a
  //    running cursor, folding each gap straight out of the packed
  //    stream and re-anchoring through the nearest checkpoint. Work per
  //    row is bounded by the gap (<= interval/2), but the
  //    variable-length folds cost a branch mispredict or two per row.
  //  * dense: reconstruct each covering window (anchored at its
  //    checkpoint; one morsel for kPacked, one interval for kInline)
  //    with the fused branch-free unpack+zigzag+prefix-sum kernel, then
  //    pick the selected values. Work per row is (gap+1) * ~0.5ns but
  //    entirely predictable.
  //
  // An unsorted selection (detected by span) takes the sparse path,
  // which tolerates out-of-order positions by re-anchoring.
  constexpr size_t kDenseGatherMaxGap = 24;
  const size_t span = rows[n - 1] >= rows[0] ? rows[n - 1] - rows[0] + 1 : 0;
  if (layout_ == DeltaLayout::kInline) {
    // The inline crossover sits much lower (measured: gap 3 — see the
    // strategy table in the bench): dense reconstruction re-anchors
    // every `interval_` rows (16 by default), so its per-window fixed
    // cost amortizes only over near-contiguous selections, while the
    // running cursor profits from the same single-window locality that
    // point access does.
    constexpr size_t kInlineDenseGatherMaxGap = 3;
    if (span == 0 || span > n * kInlineDenseGatherMaxGap) {
      simd::DeltaGatherInline(bytes_.data(), bit_width_, interval_shift_,
                              window_stride_, count_, rows.data(), n, out);
      return;
    }
    // Dense: reconstruct one interval window at a time (the inline
    // stream is not contiguous across windows, so each window gets its
    // own fused decode anchored on its inline checkpoint).
    int64_t values[kMorselRows + 1];
    size_t i = 0;
    while (i < n) {
      const size_t k = rows[i] >> interval_shift_;
      const size_t first = k << interval_shift_;
      const size_t window_end = std::min(first + interval_, count_);
      size_t j = i;
      size_t last_row = rows[i];
      while (j < n && rows[j] >= last_row && rows[j] < window_end) {
        last_row = rows[j];
        ++j;
      }
      values[0] = InlineCheckpoint(k);
      simd::DeltaDecodePacked(WindowDeltas(k), bit_width_, 0,
                              last_row - first, values[0], values + 1);
      for (; i < j; ++i) {
        out[i] = values[rows[i] - first];
      }
    }
    return;
  }
  if (span == 0 || span > n * kDenseGatherMaxGap) {
    simd::DeltaGatherPacked(bytes_.data(), bit_width_, checkpoints_.data(),
                            interval_shift_, count_, rows.data(), n, out);
    return;
  }
  int64_t values[kMorselRows + 1];
  size_t i = 0;
  while (i < n) {
    const size_t k = rows[i] >> interval_shift_;
    const size_t anchor = k << interval_shift_;
    const size_t window_end = std::min(anchor + kMorselRows, count_);
    size_t j = i;
    size_t last_row = rows[i];
    while (j < n && rows[j] >= last_row && rows[j] < window_end) {
      last_row = rows[j];
      ++j;
    }
    // values[v] is the reconstructed value at row anchor + v; slot 0 is
    // the checkpoint itself, so the pick loop is branch-free.
    values[0] = checkpoints_[k];
    simd::DeltaDecodePacked(bytes_.data(), bit_width_, anchor + 1,
                            last_row - anchor, checkpoints_[k], values + 1);
    for (; i < j; ++i) {
      out[i] = values[rows[i] - anchor];
    }
  }
}

void DeltaColumn::DecodeAll(int64_t* out) const {
  DecodeRange(0, count_, out);
}

void DeltaColumn::DecodeRange(size_t row_begin, size_t count,
                              int64_t* out) const {
  if (count == 0) {
    return;
  }
  if (layout_ == DeltaLayout::kInline) {
    // The inline stream re-anchors once per interval window: each
    // window's slots are decoded with one fused kernel call seeded by
    // the in-window checkpoint (or the partial forward fold when the
    // range starts mid-window).
    size_t row = row_begin;
    size_t done = 0;
    while (done < count) {
      const size_t k = row >> interval_shift_;
      const size_t first = k << interval_shift_;
      const size_t window_end = std::min(first + interval_, count_);
      const size_t take = std::min(window_end - row, count - done);
      const uint8_t* region = WindowDeltas(k);
      const int64_t checkpoint = InlineCheckpoint(k);
      if (row == first) {
        out[done] = checkpoint;
        simd::DeltaDecodePacked(region, bit_width_, 0, take - 1, checkpoint,
                                out + done + 1);
      } else {
        // Seed with the value at row - 1 (checkpoint plus the forward
        // fold of the preceding slots), then decode the range in place.
        const size_t local = row - first;
        const int64_t seed = static_cast<int64_t>(
            static_cast<uint64_t>(checkpoint) +
            static_cast<uint64_t>(simd::ZigZagSumPacked(region, bit_width_,
                                                        0, local - 1)));
        simd::DeltaDecodePacked(region, bit_width_, local - 1, take, seed,
                                out + done);
      }
      done += take;
      row += take;
    }
    return;
  }
  // One checkpoint seek for the first value, then the rest of the range
  // is a single fused unpack + zig-zag + prefix-sum kernel call over the
  // packed stream. No re-anchoring is needed inside the range: the
  // wrap-around prefix sum reproduces every checkpoint value exactly.
  out[0] = SeekValue(row_begin);
  simd::DeltaDecodePacked(bytes_.data(), bit_width_, row_begin + 1,
                          count - 1, out[0], out + 1);
}

void DeltaColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kDelta));
  if (layout_ == DeltaLayout::kInline) {
    writer->Write<uint64_t>(kInlineMarker);
    writer->Write<uint64_t>(interval_);
    writer->Write<uint8_t>(static_cast<uint8_t>(bit_width_));
    writer->Write<uint64_t>(count_);
    writer->WriteBytes(std::span<const uint8_t>(
        bytes_.data(), NumWindows(count_, interval_) * window_stride_));
    return;
  }
  if (interval_ != kLegacySerializedInterval) {
    writer->Write<uint64_t>(kIntervalMarker);
    writer->Write<uint64_t>(interval_);
  }
  writer->WriteInt64Array(checkpoints_);
  writer->Write<uint8_t>(static_cast<uint8_t>(bit_width_));
  writer->Write<uint64_t>(count_);
  writer->WriteBytes(bytes_);
}

}  // namespace corra::enc
