#include "encoding/rle.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::enc {

RleColumn::RleColumn(std::vector<int64_t> run_values,
                     std::vector<uint32_t> run_ends,
                     std::vector<uint32_t> checkpoints, size_t count)
    : run_values_(std::move(run_values)),
      run_ends_(std::move(run_ends)),
      checkpoints_(std::move(checkpoints)),
      count_(count) {}

Result<std::unique_ptr<RleColumn>> RleColumn::Encode(
    std::span<const int64_t> values) {
  if (values.size() > UINT32_MAX) {
    return Status::InvalidArgument("RLE column limited to 2^32-1 rows");
  }
  std::vector<int64_t> run_values;
  std::vector<uint32_t> run_ends;
  for (size_t i = 0; i < values.size();) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) {
      ++j;
    }
    run_values.push_back(values[i]);
    run_ends.push_back(static_cast<uint32_t>(j));
    i = j;
  }
  // Checkpoint: run index containing row k * interval.
  std::vector<uint32_t> checkpoints;
  size_t run = 0;
  for (size_t row = 0; row < values.size(); row += kCheckpointInterval) {
    while (run_ends[run] <= row) {
      ++run;
    }
    checkpoints.push_back(static_cast<uint32_t>(run));
  }
  return std::unique_ptr<RleColumn>(
      new RleColumn(std::move(run_values), std::move(run_ends),
                    std::move(checkpoints), values.size()));
}

size_t RleColumn::EstimateSizeBytes(std::span<const int64_t> values) {
  size_t runs = 0;
  for (size_t i = 0; i < values.size();) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) {
      ++j;
    }
    ++runs;
    i = j;
  }
  const size_t checkpoints =
      values.empty() ? 0 : (values.size() - 1) / kCheckpointInterval + 1;
  return runs * (sizeof(int64_t) + sizeof(uint32_t)) +
         checkpoints * sizeof(uint32_t);
}

Result<std::unique_ptr<RleColumn>> RleColumn::Deserialize(
    BufferReader* reader) {
  std::vector<int64_t> run_values;
  std::vector<uint32_t> run_ends;
  std::vector<uint32_t> checkpoints;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&run_values));
  CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&run_ends));
  CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&checkpoints));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (run_values.size() != run_ends.size()) {
    return Status::Corruption("RLE run arrays disagree");
  }
  // Run ends must be strictly increasing and finish exactly at count.
  uint32_t prev = 0;
  for (uint32_t end : run_ends) {
    if (end <= prev) {
      return Status::Corruption("RLE run ends not increasing");
    }
    prev = end;
  }
  if (!run_ends.empty() && run_ends.back() != count) {
    return Status::Corruption("RLE runs do not cover the column");
  }
  if (run_ends.empty() && count != 0) {
    return Status::Corruption("RLE missing runs");
  }
  const size_t expected_checkpoints =
      count == 0 ? 0 : (count - 1) / kCheckpointInterval + 1;
  if (checkpoints.size() != expected_checkpoints) {
    return Status::Corruption("RLE checkpoint count mismatch");
  }
  for (uint32_t c : checkpoints) {
    if (c >= run_values.size()) {
      return Status::Corruption("RLE checkpoint out of range");
    }
  }
  return std::unique_ptr<RleColumn>(
      new RleColumn(std::move(run_values), std::move(run_ends),
                    std::move(checkpoints), count));
}

size_t RleColumn::SizeBytes() const {
  return run_values_.size() * (sizeof(int64_t) + sizeof(uint32_t)) +
         checkpoints_.size() * sizeof(uint32_t);
}

namespace {

// Smallest run index >= `run` whose run covers `row`. The linear probe
// wins for the common short distances; selections that land many runs
// past the checkpoint (pathological run-per-row data) switch to a
// binary search over the run-end index instead of an unbounded walk.
size_t SeekRun(const std::vector<uint32_t>& run_ends, size_t run,
               size_t row) {
  constexpr size_t kLinearProbe = 8;
  const size_t probe_end = std::min(run + kLinearProbe, run_ends.size());
  for (size_t r = run; r < probe_end; ++r) {
    if (run_ends[r] > row) {
      return r;
    }
  }
  return static_cast<size_t>(
      std::upper_bound(run_ends.begin() + probe_end, run_ends.end(),
                       static_cast<uint32_t>(row)) -
      run_ends.begin());
}

}  // namespace

int64_t RleColumn::Get(size_t row) const {
  return run_values_[SeekRun(run_ends_, checkpoints_[row / kCheckpointInterval],
                             row)];
}

void RleColumn::GatherRange(std::span<const uint32_t> rows,
                            int64_t* out) const {
  const size_t n = rows.size();
  if (n == 0) {
    return;
  }
  // Density split (measured crossover at an average gap of ~8 rows on
  // the dev box: at gap 4 the dense path costs 1.9 vs 3.7 ns/row, at
  // gap 20 it costs 6.8 vs 4.9): a dense selection expands whole runs
  // into a window buffer with the vectorized ExpandRuns kernel and
  // compacts the selected values out — the per-row run *search* of the
  // walk below is the bound, not the expansion. Sparse (or unsorted)
  // selections walk run-by-run instead.
  constexpr size_t kDenseGatherMaxGap = 8;
  const size_t span = rows[n - 1] >= rows[0] ? rows[n - 1] - rows[0] + 1 : 0;
  if (span != 0 && span <= n * kDenseGatherMaxGap) {
    int64_t buffer[kMorselRows];
    size_t i = 0;
    while (i < n) {
      const size_t begin = rows[i];
      const size_t window_end = begin + kMorselRows;
      size_t j = i;
      size_t last = begin;
      while (j < n && rows[j] >= last && rows[j] < window_end) {
        last = rows[j];
        ++j;
      }
      const size_t run =
          SeekRun(run_ends_, checkpoints_[begin / kCheckpointInterval],
                  begin);
      simd::ExpandRuns(run_values_.data(), run_ends_.data(), run, begin,
                       last - begin + 1, buffer);
      for (; i < j; ++i) {
        out[i] = buffer[rows[i] - begin];
      }
    }
    return;
  }
  // The run pointer moves forward over a sorted selection, with a
  // checkpoint jump capping the forward scan when the selection skips
  // far ahead; a backward position (unsorted caller) re-seeks from its
  // checkpoint instead of returning a stale run.
  size_t run = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t row = rows[i];
    const size_t hint = checkpoints_[row / kCheckpointInterval];
    const size_t run_start = run == 0 ? 0 : run_ends_[run - 1];
    run = row < run_start ? hint : std::max(run, hint);
    run = SeekRun(run_ends_, run, row);
    out[i] = run_values_[run];
  }
}

void RleColumn::DecodeAll(int64_t* out) const {
  DecodeRange(0, count_, out);
}

void RleColumn::DecodeRange(size_t row_begin, size_t count,
                            int64_t* out) const {
  if (count == 0) {
    return;
  }
  // Checkpoint-seek to the run covering row_begin, then hand the whole
  // window to the vectorized run-expansion kernel (broadcast stores
  // instead of a per-row loop).
  const size_t run =
      SeekRun(run_ends_, checkpoints_[row_begin / kCheckpointInterval],
              row_begin);
  simd::ExpandRuns(run_values_.data(), run_ends_.data(), run, row_begin,
                   count, out);
}

void RleColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kRle));
  writer->WriteInt64Array(run_values_);
  writer->WriteUint32Array(run_ends_);
  writer->WriteUint32Array(checkpoints_);
  writer->Write<uint64_t>(count_);
}

}  // namespace corra::enc
