#include "encoding/rle.h"

#include "common/bit_util.h"

namespace corra::enc {

RleColumn::RleColumn(std::vector<int64_t> run_values,
                     std::vector<uint32_t> run_ends,
                     std::vector<uint32_t> checkpoints, size_t count)
    : run_values_(std::move(run_values)),
      run_ends_(std::move(run_ends)),
      checkpoints_(std::move(checkpoints)),
      count_(count) {}

Result<std::unique_ptr<RleColumn>> RleColumn::Encode(
    std::span<const int64_t> values) {
  if (values.size() > UINT32_MAX) {
    return Status::InvalidArgument("RLE column limited to 2^32-1 rows");
  }
  std::vector<int64_t> run_values;
  std::vector<uint32_t> run_ends;
  for (size_t i = 0; i < values.size();) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) {
      ++j;
    }
    run_values.push_back(values[i]);
    run_ends.push_back(static_cast<uint32_t>(j));
    i = j;
  }
  // Checkpoint: run index containing row k * interval.
  std::vector<uint32_t> checkpoints;
  size_t run = 0;
  for (size_t row = 0; row < values.size(); row += kCheckpointInterval) {
    while (run_ends[run] <= row) {
      ++run;
    }
    checkpoints.push_back(static_cast<uint32_t>(run));
  }
  return std::unique_ptr<RleColumn>(
      new RleColumn(std::move(run_values), std::move(run_ends),
                    std::move(checkpoints), values.size()));
}

size_t RleColumn::EstimateSizeBytes(std::span<const int64_t> values) {
  size_t runs = 0;
  for (size_t i = 0; i < values.size();) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) {
      ++j;
    }
    ++runs;
    i = j;
  }
  const size_t checkpoints =
      values.empty() ? 0 : (values.size() - 1) / kCheckpointInterval + 1;
  return runs * (sizeof(int64_t) + sizeof(uint32_t)) +
         checkpoints * sizeof(uint32_t);
}

Result<std::unique_ptr<RleColumn>> RleColumn::Deserialize(
    BufferReader* reader) {
  std::vector<int64_t> run_values;
  std::vector<uint32_t> run_ends;
  std::vector<uint32_t> checkpoints;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&run_values));
  CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&run_ends));
  CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&checkpoints));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (run_values.size() != run_ends.size()) {
    return Status::Corruption("RLE run arrays disagree");
  }
  // Run ends must be strictly increasing and finish exactly at count.
  uint32_t prev = 0;
  for (uint32_t end : run_ends) {
    if (end <= prev) {
      return Status::Corruption("RLE run ends not increasing");
    }
    prev = end;
  }
  if (!run_ends.empty() && run_ends.back() != count) {
    return Status::Corruption("RLE runs do not cover the column");
  }
  if (run_ends.empty() && count != 0) {
    return Status::Corruption("RLE missing runs");
  }
  const size_t expected_checkpoints =
      count == 0 ? 0 : (count - 1) / kCheckpointInterval + 1;
  if (checkpoints.size() != expected_checkpoints) {
    return Status::Corruption("RLE checkpoint count mismatch");
  }
  for (uint32_t c : checkpoints) {
    if (c >= run_values.size()) {
      return Status::Corruption("RLE checkpoint out of range");
    }
  }
  return std::unique_ptr<RleColumn>(
      new RleColumn(std::move(run_values), std::move(run_ends),
                    std::move(checkpoints), count));
}

size_t RleColumn::SizeBytes() const {
  return run_values_.size() * (sizeof(int64_t) + sizeof(uint32_t)) +
         checkpoints_.size() * sizeof(uint32_t);
}

int64_t RleColumn::Get(size_t row) const {
  size_t run = checkpoints_[row / kCheckpointInterval];
  while (run_ends_[run] <= row) {
    ++run;
  }
  return run_values_[run];
}

void RleColumn::DecodeAll(int64_t* out) const {
  size_t row = 0;
  for (size_t run = 0; run < run_values_.size(); ++run) {
    const int64_t v = run_values_[run];
    for (; row < run_ends_[run]; ++row) {
      out[row] = v;
    }
  }
}

void RleColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kRle));
  writer->WriteInt64Array(run_values_);
  writer->WriteUint32Array(run_ends_);
  writer->WriteUint32Array(checkpoints_);
  writer->Write<uint64_t>(count_);
}

}  // namespace corra::enc
