#include "encoding/bitpack.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::enc {

BitPackColumn::BitPackColumn(std::vector<uint8_t> bytes, int bit_width,
                             size_t count)
    : bytes_(std::move(bytes)),
      reader_(bytes_.data(), bit_width, count) {}

Result<std::unique_ptr<BitPackColumn>> BitPackColumn::Encode(
    std::span<const int64_t> values) {
  uint64_t max_value = 0;
  for (int64_t v : values) {
    if (v < 0) {
      return Status::InvalidArgument(
          "BitPack requires non-negative values; use FOR instead");
    }
    max_value = std::max(max_value, static_cast<uint64_t>(v));
  }
  const int width = bit_util::BitWidth(max_value);
  BitWriter writer(width);
  for (int64_t v : values) {
    writer.Append(static_cast<uint64_t>(v));
  }
  return std::unique_ptr<BitPackColumn>(
      new BitPackColumn(std::move(writer).Finish(), width, values.size()));
}

size_t BitPackColumn::EstimateSizeBytes(std::span<const int64_t> values) {
  uint64_t max_value = 0;
  for (int64_t v : values) {
    if (v < 0) {
      return SIZE_MAX;
    }
    max_value = std::max(max_value, static_cast<uint64_t>(v));
  }
  const int width = bit_util::BitWidth(max_value);
  return bit_util::CeilDiv(values.size() * width, 8);
}

Result<std::unique_ptr<BitPackColumn>> BitPackColumn::Deserialize(
    BufferReader* reader) {
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("BitPack width > 64");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("BitPack payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<BitPackColumn>(
      new BitPackColumn(std::move(bytes), width, count));
}

size_t BitPackColumn::SizeBytes() const {
  return bit_util::CeilDiv(reader_.size() * reader_.bit_width(), 8);
}

void BitPackColumn::GatherRange(std::span<const uint32_t> rows,
                                int64_t* out) const {
  // Positioned SIMD gather straight from the packed stream.
  simd::GatherBits(bytes_.data(), reader_.bit_width(), rows.data(),
                   rows.size(), reinterpret_cast<uint64_t*>(out));
}

void BitPackColumn::DecodeAll(int64_t* out) const {
  reader_.DecodeAll(reinterpret_cast<uint64_t*>(out));
}

void BitPackColumn::DecodeRange(size_t row_begin, size_t count,
                                int64_t* out) const {
  reader_.DecodeRange(row_begin, count, reinterpret_cast<uint64_t*>(out));
}

void BitPackColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kBitPack));
  writer->Write<uint8_t>(static_cast<uint8_t>(reader_.bit_width()));
  writer->Write<uint64_t>(reader_.size());
  writer->WriteBytes(bytes_);
}

}  // namespace corra::enc
