// Run-length encoding with positional checkpoints.
//
// Runs are (value, end_position) pairs; a checkpoint array maps every
// kCheckpointInterval-th row to its run index, so Get costs one checkpoint
// lookup plus a short forward scan (never a full binary search over all
// runs). Like Delta, RLE is implemented to *show* why the paper's baseline
// prefers FOR/Dict for point access.

#ifndef CORRA_ENCODING_RLE_H_
#define CORRA_ENCODING_RLE_H_

#include <memory>
#include <span>
#include <vector>

#include "encoding/encoded_column.h"

namespace corra::enc {

class RleColumn final : public EncodedColumn {
 public:
  static constexpr size_t kCheckpointInterval = 128;

  static Result<std::unique_ptr<RleColumn>> Encode(
      std::span<const int64_t> values);

  /// Compressed size estimate (runs + checkpoints).
  static size_t EstimateSizeBytes(std::span<const int64_t> values);

  static Result<std::unique_ptr<RleColumn>> Deserialize(BufferReader* reader);

  Scheme scheme() const override { return Scheme::kRle; }
  size_t size() const override { return count_; }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override;
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  size_t run_count() const { return run_values_.size(); }

 private:
  RleColumn(std::vector<int64_t> run_values, std::vector<uint32_t> run_ends,
            std::vector<uint32_t> checkpoints, size_t count);

  std::vector<int64_t> run_values_;
  std::vector<uint32_t> run_ends_;  // Exclusive end row of each run.
  std::vector<uint32_t> checkpoints_;  // Run index covering row k*interval.
  size_t count_ = 0;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_RLE_H_
