// Frame-of-Reference encoding: store min(values) once and bit-pack the
// non-negative offsets to it. Together with Dict this forms the paper's
// single-column baseline ("FOR- or Dict-encoding schemes, followed by a
// bit-packing"), chosen for its O(1) random access.

#ifndef CORRA_ENCODING_FOR_H_
#define CORRA_ENCODING_FOR_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "encoding/encoded_column.h"

namespace corra::enc {

class ForColumn final : public EncodedColumn {
 public:
  /// Encodes `values` relative to their minimum. Fails only when the value
  /// range does not fit in an unsigned 64-bit delta (e.g. INT64_MIN mixed
  /// with INT64_MAX).
  static Result<std::unique_ptr<ForColumn>> Encode(
      std::span<const int64_t> values);

  /// Compressed size `values` would have (payload + base), without
  /// encoding. SIZE_MAX when inapplicable.
  static size_t EstimateSizeBytes(std::span<const int64_t> values);

  static Result<std::unique_ptr<ForColumn>> Deserialize(BufferReader* reader);

  Scheme scheme() const override { return Scheme::kFor; }
  size_t size() const override { return reader_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override {
    return base_ + static_cast<int64_t>(reader_.Get(row));
  }
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  int64_t base() const { return base_; }
  int bit_width() const { return reader_.bit_width(); }

  /// Unpacks the raw (un-rebased) offsets of [row_begin, row_begin +
  /// count) — the packed-domain ranged kernel aggregate pushdown folds
  /// over (sum = n * base + sum of offsets, no per-row rebase).
  void DecodeOffsets(size_t row_begin, size_t count, uint64_t* out) const {
    reader_.DecodeRange(row_begin, count, out);
  }

 private:
  ForColumn(int64_t base, std::vector<uint8_t> bytes, int bit_width,
            size_t count);

  int64_t base_ = 0;
  std::vector<uint8_t> bytes_;
  BitReader reader_;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_FOR_H_
