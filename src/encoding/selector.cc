#include "encoding/selector.h"

#include <algorithm>

#include "encoding/bitpack.h"
#include "encoding/delta.h"
#include "encoding/dictionary.h"
#include "encoding/for.h"
#include "encoding/plain.h"
#include "encoding/rle.h"

namespace corra::enc {

namespace {

DeltaLayout DeltaLayoutFor(WorkloadHint workload) {
  return workload == WorkloadHint::kPointServing ? DeltaLayout::kInline
                                                 : DeltaLayout::kPacked;
}

}  // namespace

std::vector<SchemeEstimate> EstimateSchemes(std::span<const int64_t> values,
                                            const SelectionOptions& options) {
  std::vector<SchemeEstimate> estimates;
  estimates.push_back(
      {Scheme::kPlain, values.size() * sizeof(int64_t)});
  estimates.push_back(
      {Scheme::kBitPack, BitPackColumn::EstimateSizeBytes(values)});
  estimates.push_back({Scheme::kFor, ForColumn::EstimateSizeBytes(values)});
  estimates.push_back(
      {Scheme::kDict, DictColumn::EstimateSizeBytes(values)});
  if (options.policy == SelectionPolicy::kAllowCheckpointedSchemes) {
    const DeltaLayout layout = DeltaLayoutFor(options.workload);
    estimates.push_back(
        {Scheme::kDelta,
         DeltaColumn::EstimateSizeBytes(
             values, DeltaColumn::DefaultIntervalFor(layout), layout)});
    estimates.push_back(
        {Scheme::kRle, RleColumn::EstimateSizeBytes(values)});
  }
  return estimates;
}

std::vector<SchemeEstimate> EstimateSchemes(std::span<const int64_t> values,
                                            SelectionPolicy policy) {
  return EstimateSchemes(values, SelectionOptions{.policy = policy});
}

Result<std::unique_ptr<EncodedColumn>> SelectBestScheme(
    std::span<const int64_t> values, const SelectionOptions& options) {
  const auto estimates = EstimateSchemes(values, options);
  const auto best = std::min_element(
      estimates.begin(), estimates.end(),
      [](const SchemeEstimate& a, const SchemeEstimate& b) {
        return a.size_bytes < b.size_bytes;
      });
  switch (best->scheme) {
    case Scheme::kPlain:
      return std::unique_ptr<EncodedColumn>(PlainColumn::Encode(values));
    case Scheme::kBitPack: {
      CORRA_ASSIGN_OR_RETURN(auto col, BitPackColumn::Encode(values));
      return std::unique_ptr<EncodedColumn>(std::move(col));
    }
    case Scheme::kFor: {
      CORRA_ASSIGN_OR_RETURN(auto col, ForColumn::Encode(values));
      return std::unique_ptr<EncodedColumn>(std::move(col));
    }
    case Scheme::kDict: {
      CORRA_ASSIGN_OR_RETURN(auto col, DictColumn::Encode(values));
      return std::unique_ptr<EncodedColumn>(std::move(col));
    }
    case Scheme::kDelta: {
      const DeltaLayout layout = DeltaLayoutFor(options.workload);
      CORRA_ASSIGN_OR_RETURN(
          auto col,
          DeltaColumn::Encode(values, DeltaColumn::DefaultIntervalFor(layout),
                              layout));
      return std::unique_ptr<EncodedColumn>(std::move(col));
    }
    case Scheme::kRle: {
      CORRA_ASSIGN_OR_RETURN(auto col, RleColumn::Encode(values));
      return std::unique_ptr<EncodedColumn>(std::move(col));
    }
    default:
      return Status::Internal("selector produced non-vertical scheme");
  }
}

Result<std::unique_ptr<EncodedColumn>> SelectBestScheme(
    std::span<const int64_t> values, SelectionPolicy policy) {
  return SelectBestScheme(values, SelectionOptions{.policy = policy});
}

}  // namespace corra::enc
