#include "encoding/for.h"

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::enc {

namespace {
// Range check: the unsigned delta max-min must be representable.
bool RangeRepresentable(int64_t min, int64_t max) {
  // Deltas are computed in uint64 space, which wraps correctly for any
  // int64 pair, so the only unrepresentable case does not exist; but a
  // range of exactly 2^64-1 would need width 64 which is supported. Keep
  // the helper for clarity and future narrowing.
  (void)min;
  (void)max;
  return true;
}
}  // namespace

ForColumn::ForColumn(int64_t base, std::vector<uint8_t> bytes, int bit_width,
                     size_t count)
    : base_(base), bytes_(std::move(bytes)),
      reader_(bytes_.data(), bit_width, count) {}

Result<std::unique_ptr<ForColumn>> ForColumn::Encode(
    std::span<const int64_t> values) {
  const auto mm = bit_util::ComputeMinMax(values);
  if (!RangeRepresentable(mm.min, mm.max)) {
    return Status::InvalidArgument("FOR range too wide");
  }
  const int width = bit_util::MaxForBitWidth(values, mm.min);
  BitWriter writer(width);
  for (int64_t v : values) {
    writer.Append(static_cast<uint64_t>(v) - static_cast<uint64_t>(mm.min));
  }
  return std::unique_ptr<ForColumn>(new ForColumn(
      mm.min, std::move(writer).Finish(), width, values.size()));
}

size_t ForColumn::EstimateSizeBytes(std::span<const int64_t> values) {
  const auto mm = bit_util::ComputeMinMax(values);
  const int width = bit_util::BitWidth(static_cast<uint64_t>(mm.max) -
                                       static_cast<uint64_t>(mm.min));
  return bit_util::CeilDiv(values.size() * width, 8) + sizeof(int64_t);
}

Result<std::unique_ptr<ForColumn>> ForColumn::Deserialize(
    BufferReader* reader) {
  int64_t base = 0;
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&base));
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("FOR width > 64");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("FOR payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  return std::unique_ptr<ForColumn>(
      new ForColumn(base, std::move(bytes), width, count));
}

size_t ForColumn::SizeBytes() const {
  return bit_util::CeilDiv(reader_.size() * reader_.bit_width(), 8) +
         sizeof(int64_t);
}

void ForColumn::GatherRange(std::span<const uint32_t> rows,
                            int64_t* out) const {
  // Positioned SIMD gather of the packed offsets, then one vectorized
  // rebase pass — the sparse twin of DecodeRange.
  simd::GatherBits(bytes_.data(), reader_.bit_width(), rows.data(),
                   rows.size(), reinterpret_cast<uint64_t*>(out));
  simd::AddConst(out, rows.size(), base_);
}

void ForColumn::DecodeAll(int64_t* out) const {
  DecodeRange(0, reader_.size(), out);
}

void ForColumn::DecodeRange(size_t row_begin, size_t count,
                            int64_t* out) const {
  // Unpack the offsets with the SIMD kernels, then rebase in a second
  // vectorized pass (both L1-resident; the split keeps the unpack kernel
  // width-specialized and branch-free).
  reader_.DecodeRange(row_begin, count, reinterpret_cast<uint64_t*>(out));
  simd::AddConst(out, count, base_);
}

void ForColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kFor));
  writer->Write<int64_t>(base_);
  writer->Write<uint8_t>(static_cast<uint8_t>(reader_.bit_width()));
  writer->Write<uint64_t>(reader_.size());
  writer->WriteBytes(bytes_);
}

}  // namespace corra::enc
