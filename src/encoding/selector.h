// Best-single-scheme selector: the paper's baseline.
//
// "We compare Corra to a baseline that employs the best single-column
//  encoding scheme for each column. We use FOR- or Dict-encoding schemes,
//  followed by a bit-packing. We chose these because they allow for fast
//  random access into the compressed column; both RLE and Delta require
//  checkpoints." (Sec. 3)
//
// SelectBestScheme estimates the compressed size under every applicable
// scheme and encodes with the cheapest one. By default only O(1)-access
// schemes compete (the paper's rule); pass kAllowCheckpointedSchemes to add
// Delta and RLE to the pool (used by the ablation bench). The workload
// hint steers physical-layout choices inside a scheme: point-heavy
// serving workloads get Delta's inline-checkpoint layout (single-window
// point access) at a small size premium, while the default analytic
// hint keeps the packed-contiguous layout dense scans want.

#ifndef CORRA_ENCODING_SELECTOR_H_
#define CORRA_ENCODING_SELECTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "encoding/encoded_column.h"

namespace corra::enc {

/// Candidate pool policy for SelectBestScheme.
enum class SelectionPolicy {
  /// FOR, Dict, BitPack, Plain — fast random access only (paper baseline).
  kConstantTimeAccessOnly,
  /// Additionally consider Delta and RLE.
  kAllowCheckpointedSchemes,
};

/// Expected access pattern of the encoded column. Does not change which
/// schemes compete — only physical-layout choices within a scheme
/// (currently: Delta's checkpoint layout).
enum class WorkloadHint {
  /// Dense scans dominate (default): layouts optimize DecodeRange.
  kAnalytic,
  /// Point lookups / sparse gathers dominate (the ScanService Gather and
  /// point-request path): Delta uses the inline-checkpoint layout, whose
  /// windows make every point access one contiguous touch.
  kPointServing,
};

/// Knobs for SelectBestScheme beyond the candidate pool policy.
struct SelectionOptions {
  SelectionPolicy policy = SelectionPolicy::kConstantTimeAccessOnly;
  WorkloadHint workload = WorkloadHint::kAnalytic;
};

/// Estimated compressed footprint of one candidate scheme.
struct SchemeEstimate {
  Scheme scheme;
  size_t size_bytes;  // SIZE_MAX if the scheme is inapplicable.
};

/// Estimates all candidate sizes for `values` without encoding. Delta is
/// estimated under the layout the workload hint would encode with, so
/// the size comparison stays honest.
std::vector<SchemeEstimate> EstimateSchemes(std::span<const int64_t> values,
                                            const SelectionOptions& options);
std::vector<SchemeEstimate> EstimateSchemes(std::span<const int64_t> values,
                                            SelectionPolicy policy);

/// Encodes `values` with the smallest applicable scheme under `options`.
Result<std::unique_ptr<EncodedColumn>> SelectBestScheme(
    std::span<const int64_t> values, const SelectionOptions& options);
Result<std::unique_ptr<EncodedColumn>> SelectBestScheme(
    std::span<const int64_t> values,
    SelectionPolicy policy = SelectionPolicy::kConstantTimeAccessOnly);

}  // namespace corra::enc

#endif  // CORRA_ENCODING_SELECTOR_H_
