#include "encoding/string_dict.h"

namespace corra::enc {

int64_t StringDictionary::GetOrInsert(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) {
    return it->second;
  }
  const int64_t code = static_cast<int64_t>(size());
  chars_.insert(chars_.end(), s.begin(), s.end());
  offsets_.push_back(static_cast<uint32_t>(chars_.size()));
  index_.emplace(std::string(s), code);
  return code;
}

Result<int64_t> StringDictionary::CodeOf(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) {
    return Status::NotFound("string not in dictionary: " + std::string(s));
  }
  return it->second;
}

void StringDictionary::Serialize(BufferWriter* writer) const {
  writer->WriteBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(chars_.data()), chars_.size()));
  writer->WriteUint32Array(offsets_);
}

Result<StringDictionary> StringDictionary::Deserialize(BufferReader* reader) {
  std::span<const uint8_t> chars;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&chars));
  std::vector<uint32_t> offsets;
  CORRA_RETURN_NOT_OK(reader->ReadUint32Array(&offsets));
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != chars.size()) {
    return Status::Corruption("string dictionary offsets inconsistent");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Corruption("string dictionary offsets not monotone");
    }
  }
  StringDictionary dict;
  dict.chars_.assign(chars.begin(), chars.end());
  dict.offsets_ = std::move(offsets);
  return dict;
}

void StringDictionary::RebuildIndex() {
  index_.clear();
  for (size_t code = 0; code < size(); ++code) {
    index_.emplace(std::string((*this)[code]), static_cast<int64_t>(code));
  }
}

}  // namespace corra::enc
