#include "encoding/encoded_column.h"

namespace corra::enc {

std::string_view SchemeToString(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPlain:
      return "Plain";
    case Scheme::kBitPack:
      return "BitPack";
    case Scheme::kFor:
      return "FOR";
    case Scheme::kDict:
      return "Dict";
    case Scheme::kDelta:
      return "Delta";
    case Scheme::kRle:
      return "RLE";
    case Scheme::kDiff:
      return "Corra-Diff";
    case Scheme::kHierarchical:
      return "Corra-Hierarchical";
    case Scheme::kMultiRef:
      return "Corra-MultiRef";
    case Scheme::kC3Dfor:
      return "C3-DFOR";
    case Scheme::kC3Numerical:
      return "C3-Numerical";
    case Scheme::kC3OneToOne:
      return "C3-1to1";
  }
  return "Unknown";
}

void EncodedColumn::GatherRange(std::span<const uint32_t> rows,
                                int64_t* out) const {
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = Get(rows[i]);
  }
}

void EncodedColumn::DecodeAll(int64_t* out) const {
  DecodeRange(0, size(), out);
}

void EncodedColumn::DecodeRange(size_t row_begin, size_t count,
                                int64_t* out) const {
  for (size_t i = 0; i < count; ++i) {
    out[i] = Get(row_begin + i);
  }
}

Status EncodedColumn::BindReferences(
    std::span<const EncodedColumn* const> references) {
  if (!references.empty()) {
    return Status::InvalidArgument(
        "vertical scheme does not take references");
  }
  return Status::OK();
}

}  // namespace corra::enc
