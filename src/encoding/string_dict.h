// StringDictionary: the paper's flattened string storage ("we use Dict
// encoding and pack the distinct strings into a flattened array").
//
// Distinct strings are concatenated into one char buffer; an offsets array
// delimits them. A string column's logical int64 values are codes into this
// dictionary, and the dictionary's footprint counts toward the column's
// compressed size (this is why DMV's (state, city) pair only saves 1.8% —
// the flattened strings dominate).

#ifndef CORRA_ENCODING_STRING_DICT_H_
#define CORRA_ENCODING_STRING_DICT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"

namespace corra::enc {

class StringDictionary {
 public:
  StringDictionary() = default;

  StringDictionary(const StringDictionary&) = delete;
  StringDictionary& operator=(const StringDictionary&) = delete;
  StringDictionary(StringDictionary&&) = default;
  StringDictionary& operator=(StringDictionary&&) = default;

  /// Returns the code of `s`, inserting it if new. Codes are dense and
  /// assigned in first-seen order.
  int64_t GetOrInsert(std::string_view s);

  /// Returns the code of `s`, or an error if absent. Lookup structures are
  /// available only on dictionaries built via GetOrInsert (not after
  /// Deserialize) unless RebuildIndex was called.
  Result<int64_t> CodeOf(std::string_view s) const;

  /// The string for `code` (precondition: code < size()). The view aliases
  /// internal storage.
  std::string_view operator[](size_t code) const {
    return std::string_view(chars_.data() + offsets_[code],
                            offsets_[code + 1] - offsets_[code]);
  }

  size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Flattened footprint: characters plus offsets.
  size_t SizeBytes() const {
    return chars_.size() + offsets_.size() * sizeof(uint32_t);
  }

  void Serialize(BufferWriter* writer) const;
  static Result<StringDictionary> Deserialize(BufferReader* reader);

  /// Rebuilds the string -> code hash index (needed for CodeOf after
  /// deserialization).
  void RebuildIndex();

 private:
  std::vector<char> chars_;
  std::vector<uint32_t> offsets_ = {0};  // size()+1 entries.
  std::unordered_map<std::string, int64_t> index_;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_STRING_DICT_H_
