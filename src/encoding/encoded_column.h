// EncodedColumn: the common interface of every compressed column.
//
// An encoded column answers point lookups (Get), batched selective
// materialization (Gather), and full decompression (DecodeAll), reports its
// compressed footprint (SizeBytes — the quantity in the paper's Table 2),
// and serializes itself into the self-contained block format.
//
// Horizontal (correlation-aware) columns additionally declare which sibling
// columns they reference; the owning Block resolves those references after
// deserialization via BindReferences.

#ifndef CORRA_ENCODING_ENCODED_COLUMN_H_
#define CORRA_ENCODING_ENCODED_COLUMN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "common/status.h"
#include "encoding/scheme.h"

namespace corra::enc {

/// Rows per morsel of the batch decode pipeline. Query kernels walk
/// columns in fixed-size morsels so every scheme pays one (devirtualized)
/// dispatch per morsel instead of one per row, and the decoded vector
/// stays L1/L2-resident while the kernel consumes it.
inline constexpr size_t kMorselRows = 2048;

class EncodedColumn {
 public:
  virtual ~EncodedColumn() = default;

  EncodedColumn(const EncodedColumn&) = delete;
  EncodedColumn& operator=(const EncodedColumn&) = delete;

  /// Which encoding this column uses.
  virtual Scheme scheme() const = 0;

  /// Number of rows.
  virtual size_t size() const = 0;

  /// Compressed footprint in bytes: packed payload plus scheme metadata
  /// (dictionaries, offsets arrays, outlier stores). Excludes alignment
  /// padding so the number is directly comparable to the paper's Table 2.
  virtual size_t SizeBytes() const = 0;

  /// The logical value at `row` (precondition: row < size()).
  virtual int64_t Get(size_t row) const = 0;

  /// Materializes the values at the given sorted row positions into `out`
  /// (which must hold rows.size() values). Compatibility spelling of
  /// GatherRange — one indirect dispatch, then the scheme's sparse path.
  void Gather(std::span<const uint32_t> rows, int64_t* out) const {
    GatherRange(rows, out);
  }

  /// The selection-driven sparse-decode kernel: materializes the values
  /// at the sorted row positions `rows` into `out` (rows.size() values)
  /// *without* densifying the rows in between. Every scheme overrides
  /// this with a positioned fast path — vpgatherqq-style packed-stream
  /// gathers for the bit-packed schemes, checkpoint-indexed seeks for
  /// Delta/RLE, and a reference-morsel gather loop for the horizontal
  /// schemes — so selective scans never bottom out in a per-row virtual
  /// Get. Positions are expected ascending; out-of-order positions are
  /// tolerated (the seeking schemes re-anchor) but forfeit the fast path.
  virtual void GatherRange(std::span<const uint32_t> rows,
                           int64_t* out) const;

  /// Decompresses the whole column into `out` (size() values).
  /// Default: one DecodeRange over the full row span.
  virtual void DecodeAll(int64_t* out) const;

  /// Decompresses the dense row range [row_begin, row_begin + count) into
  /// `out` (count values; row_begin + count <= size()). This is the
  /// ranged kernel the morsel pipeline is built on: every scheme
  /// overrides it with a sequential fast path (word-at-a-time unpack,
  /// rebase loop, code-range translate, checkpoint-seek-then-run), so
  /// generic query paths never fall back to a per-row virtual Get.
  virtual void DecodeRange(size_t row_begin, size_t count,
                           int64_t* out) const;

  /// Appends the full wire representation (scheme byte first).
  virtual void Serialize(BufferWriter* writer) const = 0;

  /// Block-local indices of the columns this one references (empty for
  /// vertical schemes). Order matches BindReferences.
  virtual std::vector<uint32_t> ReferenceIndices() const { return {}; }

  /// Wires the resolved reference columns (same order as
  /// ReferenceIndices). Vertical schemes accept only an empty span.
  virtual Status BindReferences(
      std::span<const EncodedColumn* const> references);

 protected:
  EncodedColumn() = default;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_ENCODED_COLUMN_H_
