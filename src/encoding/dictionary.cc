#include "encoding/dictionary.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/bit_util.h"
#include "common/simd/simd.h"

namespace corra::enc {

DictColumn::DictColumn(std::vector<int64_t> dict, std::vector<uint8_t> bytes,
                       int bit_width, size_t count)
    : dict_(std::move(dict)),
      bytes_(std::move(bytes)),
      reader_(bytes_.data(), bit_width, count) {}

Result<std::unique_ptr<DictColumn>> DictColumn::Encode(
    std::span<const int64_t> values) {
  std::vector<int64_t> dict(values.begin(), values.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());

  std::unordered_map<int64_t, uint64_t> code_of;
  code_of.reserve(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    code_of.emplace(dict[i], i);
  }

  const int width =
      bit_util::BitWidth(dict.empty() ? 0 : dict.size() - 1);
  BitWriter writer(width);
  for (int64_t v : values) {
    writer.Append(code_of.find(v)->second);
  }
  return std::unique_ptr<DictColumn>(new DictColumn(
      std::move(dict), std::move(writer).Finish(), width, values.size()));
}

size_t DictColumn::EstimateSizeBytes(std::span<const int64_t> values) {
  std::unordered_set<int64_t> distinct(values.begin(), values.end());
  const size_t cardinality = distinct.size();
  const int width =
      bit_util::BitWidth(cardinality == 0 ? 0 : cardinality - 1);
  return bit_util::CeilDiv(values.size() * width, 8) +
         cardinality * sizeof(int64_t);
}

Result<std::unique_ptr<DictColumn>> DictColumn::Deserialize(
    BufferReader* reader) {
  std::vector<int64_t> dict;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&dict));
  uint8_t width = 0;
  uint64_t count = 0;
  CORRA_RETURN_NOT_OK(reader->Read(&width));
  CORRA_RETURN_NOT_OK(reader->Read(&count));
  if (width > 64) {
    return Status::Corruption("Dict width > 64");
  }
  std::span<const uint8_t> payload;
  CORRA_RETURN_NOT_OK(reader->ReadBytes(&payload));
  if (payload.size() < bit_util::PackedDataBytes(count, width)) {
    return Status::Corruption("Dict payload truncated");
  }
  std::vector<uint8_t> bytes(payload.begin(), payload.end());
  bytes.resize(bit_util::PackedBytes(count, width), 0);  // Decode slack.
  // Reject codes that exceed the dictionary, so a corrupted payload cannot
  // cause out-of-bounds reads later. Probe the padded copy — the raw span
  // may lack the load slack Get assumes.
  BitReader probe(bytes.data(), width, count);
  for (size_t i = 0; i < count; ++i) {
    if (probe.Get(i) >= dict.size()) {
      return Status::Corruption("Dict code out of range");
    }
  }
  return std::unique_ptr<DictColumn>(
      new DictColumn(std::move(dict), std::move(bytes), width, count));
}

size_t DictColumn::SizeBytes() const {
  return bit_util::CeilDiv(reader_.size() * reader_.bit_width(), 8) +
         dict_.size() * sizeof(int64_t);
}

void DictColumn::GatherRange(std::span<const uint32_t> rows,
                             int64_t* out) const {
  // Positioned gather of the packed codes into a stack chunk, then one
  // SIMD dictionary translate per chunk (same split as DecodeRange).
  uint64_t codes[kMorselRows];
  const int64_t* dict = dict_.data();
  size_t done = 0;
  while (done < rows.size()) {
    const size_t len = std::min(rows.size() - done, kMorselRows);
    simd::GatherBits(bytes_.data(), reader_.bit_width(), rows.data() + done,
                     len, codes);
    simd::TranslateCodes(dict, codes, len, out + done);
    done += len;
  }
}

void DictColumn::DecodeAll(int64_t* out) const {
  DecodeRange(0, reader_.size(), out);
}

void DictColumn::DecodeRange(size_t row_begin, size_t count,
                             int64_t* out) const {
  // Unpack the codes of one morsel-sized chunk into a stack buffer, then
  // gather through the dictionary with one SIMD translate per chunk. The
  // separate code buffer (instead of translating `out` in place) keeps
  // the unpack kernel's stores and the gather's loads independent, and
  // the chunk L1-resident.
  uint64_t codes[kMorselRows];
  const int64_t* dict = dict_.data();
  while (count > 0) {
    const size_t len = count < kMorselRows ? count : kMorselRows;
    reader_.DecodeRange(row_begin, len, codes);
    simd::TranslateCodes(dict, codes, len, out);
    row_begin += len;
    count -= len;
    out += len;
  }
}

void DictColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kDict));
  writer->WriteInt64Array(dict_);
  writer->Write<uint8_t>(static_cast<uint8_t>(reader_.bit_width()));
  writer->Write<uint64_t>(reader_.size());
  writer->WriteBytes(bytes_);
}

}  // namespace corra::enc
