// Dictionary encoding: the sorted distinct values are stored once, each row
// stores a bit-packed code. The second member of the paper's baseline pool;
// wins over FOR when the distinct count is far below the value range (e.g.
// zip codes, dict-coded strings, IPs).

#ifndef CORRA_ENCODING_DICTIONARY_H_
#define CORRA_ENCODING_DICTIONARY_H_

#include <memory>
#include <span>
#include <vector>

#include "common/bit_stream.h"
#include "encoding/encoded_column.h"

namespace corra::enc {

class DictColumn final : public EncodedColumn {
 public:
  /// Builds the dictionary and packs one code per row.
  static Result<std::unique_ptr<DictColumn>> Encode(
      std::span<const int64_t> values);

  /// Compressed size `values` would have (codes + dictionary), without
  /// encoding them. Performs a distinct-count pass.
  static size_t EstimateSizeBytes(std::span<const int64_t> values);

  static Result<std::unique_ptr<DictColumn>> Deserialize(
      BufferReader* reader);

  Scheme scheme() const override { return Scheme::kDict; }
  size_t size() const override { return reader_.size(); }
  size_t SizeBytes() const override;
  int64_t Get(size_t row) const override {
    return dict_[reader_.Get(row)];
  }
  void GatherRange(std::span<const uint32_t> rows,
                   int64_t* out) const override;
  void DecodeAll(int64_t* out) const override;
  void DecodeRange(size_t row_begin, size_t count,
                   int64_t* out) const override;
  void Serialize(BufferWriter* writer) const override;

  /// The code stored at `row` (an index into dictionary()).
  uint64_t GetCode(size_t row) const { return reader_.Get(row); }
  /// Unpacks the codes of [row_begin, row_begin + count) into `out` —
  /// the code-domain ranged kernel used by filter and aggregate pushdown
  /// (compare/fold codes, never touch values).
  void DecodeCodes(size_t row_begin, size_t count, uint64_t* out) const {
    reader_.DecodeRange(row_begin, count, out);
  }
  std::span<const int64_t> dictionary() const { return dict_; }
  int bit_width() const { return reader_.bit_width(); }

 private:
  DictColumn(std::vector<int64_t> dict, std::vector<uint8_t> bytes,
             int bit_width, size_t count);

  std::vector<int64_t> dict_;  // Sorted distinct values.
  std::vector<uint8_t> bytes_;
  BitReader reader_;
};

}  // namespace corra::enc

#endif  // CORRA_ENCODING_DICTIONARY_H_
