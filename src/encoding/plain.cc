#include "encoding/plain.h"

#include <cstring>

namespace corra::enc {

std::unique_ptr<PlainColumn> PlainColumn::Encode(
    std::span<const int64_t> values) {
  return std::unique_ptr<PlainColumn>(
      new PlainColumn(std::vector<int64_t>(values.begin(), values.end())));
}

Result<std::unique_ptr<PlainColumn>> PlainColumn::Deserialize(
    BufferReader* reader) {
  std::vector<int64_t> values;
  CORRA_RETURN_NOT_OK(reader->ReadInt64Array(&values));
  return std::unique_ptr<PlainColumn>(new PlainColumn(std::move(values)));
}

void PlainColumn::GatherRange(std::span<const uint32_t> rows,
                              int64_t* out) const {
  const int64_t* values = values_.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i] = values[rows[i]];
  }
}

void PlainColumn::DecodeAll(int64_t* out) const {
  std::memcpy(out, values_.data(), values_.size() * sizeof(int64_t));
}

void PlainColumn::DecodeRange(size_t row_begin, size_t count,
                              int64_t* out) const {
  std::memcpy(out, values_.data() + row_begin, count * sizeof(int64_t));
}

void PlainColumn::Serialize(BufferWriter* writer) const {
  writer->Write<uint8_t>(static_cast<uint8_t>(Scheme::kPlain));
  writer->WriteInt64Array(values_);
}

}  // namespace corra::enc
